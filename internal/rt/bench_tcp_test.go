package rt

import (
	"runtime"
	"testing"
	"time"

	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/transport"
	"github.com/mnm-model/mnm/internal/transport/tcp"
)

// benchTCPMesh builds an n-node loopback mesh (one single-process
// transport per node, as newTCPHosts does for the rt cluster tests) and
// waits until every outbound link is up.
func benchTCPMesh(b *testing.B, n int) []*tcp.Transport {
	b.Helper()
	trs := make([]*tcp.Transport, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := tcp.New(tcp.Config{
			N:          n,
			Hosted:     []core.ProcID{core.ProcID(i)},
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			b.Fatalf("node %d: %v", i, err)
		}
		b.Cleanup(func() { tr.Close() })
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	for i, tr := range trs {
		if err := tr.SetAddrs(addrs); err != nil {
			b.Fatalf("node %d SetAddrs: %v", i, err)
		}
		if err := tr.Dial(); err != nil {
			b.Fatalf("node %d Dial: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for i, tr := range trs {
		for j := range trs {
			if i == j {
				continue
			}
			for tr.LinkState(core.ProcID(i), core.ProcID(j)) != transport.LinkUp {
				if !time.Now().Before(deadline) {
					b.Fatalf("link %d->%d never came up", i, j)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	return trs
}

// BenchmarkBroadcastFanout measures the "send to all" pattern every
// broadcast-based algorithm in this repo (HBO, Ben-Or, the leader
// detector's heartbeats) puts on the wire: one process broadcasting to an
// n-node TCP mesh while every node drains its mailbox. The msgs/s metric
// counts deliveries (n per broadcast: n-1 remote frames + 1 local).
func BenchmarkBroadcastFanout(b *testing.B) {
	const n = 4
	trs := benchTCPMesh(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			trs[0].Broadcast(0, i)
		}
	}()
	total := n * b.N
	for received := 0; received < total; {
		progressed := false
		for j := 0; j < n; j++ {
			if _, ok := trs[j].TryRecv(core.ProcID(j)); ok {
				received++
				progressed = true
			}
		}
		if !progressed {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "msgs/s")
}
