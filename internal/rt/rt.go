// Package rt is the real-time host for m&m algorithms: one goroutine per
// process, true parallelism, pluggable message transports.
//
// The same algorithm code that runs under the deterministic simulator
// (internal/sim) runs here unmodified — the core.Env contract is
// identical; only the notion of a "step" changes from a scheduler grant to
// an actual operation. The real-time host exists for two reasons: to show
// that the algorithms are real programs rather than simulator artifacts,
// and to measure wall-clock performance shapes (register ops vs. message
// ops, scaling with n and the G_SM degree) on real hardware.
//
// Messages travel over a transport.Transport. The default is the
// in-process channel backend (transport.Chan, the exact message path this
// host used before the transport layer existed); supplying a
// transport/tcp.Transport instead runs the same algorithms across OS
// processes over real sockets. With a distributed transport, Config.Hosted
// restricts which processes this host actually runs; shared registers
// owned by remote processes are reached through the transport's RPC plane,
// served by the owner's host out of its local register store (so
// shared-memory domain checks always happen at the owner).
//
// Runs are not deterministic: asynchrony comes from the Go scheduler (and,
// over TCP, from the network). Every safety property must therefore hold
// for *any* interleaving, which is exactly what the paper's algorithms
// promise (and -race verifies the substrate side).
package rt

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/durable"
	"github.com/mnm-model/mnm/internal/metrics"
	"github.com/mnm-model/mnm/internal/msgnet"
	"github.com/mnm-model/mnm/internal/runcfg"
	"github.com/mnm-model/mnm/internal/shm"
	"github.com/mnm-model/mnm/internal/trace"
	"github.com/mnm-model/mnm/internal/transport"
)

// RunConfig is the host-independent part of a run description, shared with
// the simulator (see internal/runcfg).
type RunConfig = runcfg.RunConfig

// Config describes a real-time m&m system.
type Config struct {
	// RunConfig holds the host-independent knobs: GSM (required), Links,
	// Drop, Seed, Counters, Trace and Logf.
	runcfg.RunConfig

	// Transport carries messages between processes. Nil selects the
	// in-process channel backend, preserving the host's historical
	// behavior exactly. A non-nil transport must span the same n as GSM;
	// if Drop is also set, the transport is wrapped in transport.Lossy.
	// The host owns the transport from then on: Stop closes and drains it.
	Transport transport.Transport

	// Hosted lists the processes this host actually runs. Empty means all
	// of them. A strict subset requires a Transport whose concrete type
	// implements transport.RPC (e.g. transport/tcp.Transport), because
	// registers owned by remote processes are accessed through it.
	Hosted []core.ProcID

	// Registry, if non-nil, is the unified observability plane of the run:
	// counters plus latency histograms, handed to the transport (via
	// transport.Instrumentable) so every backend reports the same schema,
	// and fed by the host's remote-register RPC timing. If nil, one is
	// synthesized — around RunConfig.Counters when that deprecated shim is
	// set, around fresh counters otherwise. When Registry is set it is the
	// single metering object and RunConfig.Counters is ignored.
	Registry *metrics.Registry

	// Durable, if non-nil, journals every register mutation of this
	// group's shm.Memory (append + fsync before the write becomes
	// visible) and seeds the memory with the store's recovered state
	// before any process runs — the crash-recovery fault model of the
	// paper ("the shared memory does not fail"), see internal/durable.
	// The group owns the store from then on: Stop closes it after the
	// transport drains.
	Durable *durable.Registers

	// Flight, if non-nil, is the node's span flight recorder: the group's
	// op sites start spans in it, send/RPC edges carry their context over
	// the transport's span plane (wire v4), and span latencies feed the
	// Registry's "span_<kind>" histograms. Nil (the default) disables span
	// tracing at zero cost on the hot path.
	Flight *trace.Flight
	// SpanGroup labels this group's spans, matching the group's metrics
	// sub-registry label ("group-<id>"; "" for the base group).
	SpanGroup string
}

// Result is the structured outcome of a real-time run, mirroring
// sim.Result for the fields that make sense without a global step counter.
type Result struct {
	// Errors maps processes to the error their body returned, if any.
	Errors map[core.ProcID]error
	// Elapsed is the wall-clock time from Start until every hosted
	// process goroutine exited.
	Elapsed time.Duration
	// Steps is the total number of steps taken by hosted processes.
	Steps uint64
	// Hosted lists the processes this host ran.
	Hosted []core.ProcID
	// Counters holds the final metric values. Note that with a
	// distributed transport, remote register operations are metered at
	// the owner's node (under the calling process's index), so each
	// node's counters cover the registers it serves.
	Counters *metrics.Counters
}

// Err flattens the run's process errors into one error: nil when every
// process succeeded, the error itself when exactly one failed, and a
// joined multi-error — one branch per failed process, in ascending
// ProcID order, each wrapped so errors.Is/As see through it — when
// several did. The order is sorted once per call (not the map's random
// iteration order), so the result is stable and no failure is silently
// dropped in favor of the lowest ProcID.
func (r *Result) Err() error {
	if r == nil || len(r.Errors) == 0 {
		return nil
	}
	procs := make([]core.ProcID, 0, len(r.Errors))
	for p := range r.Errors {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	if len(procs) == 1 {
		return r.Errors[procs[0]]
	}
	errs := make([]error, len(procs))
	for i, p := range procs {
		errs[i] = fmt.Errorf("proc %v: %w", p, r.Errors[p])
	}
	return errors.Join(errs...)
}

// Host is the single-group special case of Group, kept as a thin
// compatibility alias: a Host built by New owns its transport outright
// (Stop closes and drains it), which is exactly a Group whose transport
// is not shared with any other shard. Multi-tenant callers use Node /
// Node.OpenGroup instead and get Groups whose Stop detaches only their
// own shard.
type Host = Group

// Group runs one m&m system (one shard) with real concurrency: its own
// GSM, hosted set, shard-scoped register namespace (a private shm.Memory)
// and process goroutines. A Group owns the transport.Transport it was
// built over; when that transport is a group view of a sharded backend
// (see Node.OpenGroup), many Groups multiplex over one node's shared
// connections and Stop releases only this group's slice.
type Group struct {
	n         int
	hosted    []core.ProcID
	hostedSet map[core.ProcID]bool
	mem       *shm.Memory
	tr        transport.Transport
	spanTr    transport.SpanCarrier // tr's span plane; nil when unsupported
	rpc       transport.RPC         // nil when every register owner is hosted
	srpc      transport.SpanRPC     // rpc's span plane; nil when unsupported
	counters  *metrics.Counters
	registry  *metrics.Registry
	durable   *durable.Registers // nil unless Config.Durable was set
	traceRec  *trace.Recorder
	spans     *trace.Scope // nil when span tracing is off
	logf      func(format string, args ...any)
	procs     []*rtProc // nil entries for processes hosted elsewhere
	wg        sync.WaitGroup
	stopped   atomic.Bool
	started   atomic.Bool
	stopCh    chan struct{}
	stopOnce  sync.Once

	mu        sync.Mutex
	errs      map[core.ProcID]error
	startGate chan struct{}
	startedAt time.Time
	elapsed   time.Duration

	finishOnce sync.Once
	closeOnce  sync.Once

	// onStop, when set (by Node.OpenGroup), runs once after Stop has
	// closed the group's transport — the node's deregistration hook.
	onStop func()
}

type rtProc struct {
	id      core.ProcID
	steps   atomic.Uint64
	crashed atomic.Bool
	rng     *rand.Rand // used only by the owning goroutine

	mu      sync.Mutex
	exposed map[string]core.Value

	neighbors []core.ProcID
}

// New builds a host for alg over the system described by cfg. Processes do
// not run until Start is called.
func New(cfg Config, alg core.Algorithm) (*Group, error) {
	if cfg.GSM == nil {
		return nil, errors.New("rt: Config.GSM is required")
	}
	n := cfg.GSM.N()
	if n == 0 {
		return nil, errors.New("rt: empty system")
	}
	if cfg.Links == 0 {
		cfg.Links = msgnet.Reliable
	}
	// Registry-only observability config, mirroring tcp.Config: the
	// deprecated Counters shim is only consulted when no Registry is
	// given, so there is one metering object and no precedence footnote.
	registry := cfg.Registry
	if registry == nil {
		if cfg.Counters != nil {
			registry = metrics.NewRegistryWith(cfg.Counters)
		} else {
			registry = metrics.NewRegistry(n)
		}
	}
	counters := registry.Counters()
	if counters == nil {
		counters = metrics.NewCounters(n)
		registry.AdoptCounters(counters)
	}

	hosted, hostedSet, err := hostedProcs(n, cfg.Hosted)
	if err != nil {
		return nil, err
	}

	tr := cfg.Transport
	var rpc transport.RPC
	if tr == nil {
		if len(hosted) < n {
			return nil, errors.New("rt: Config.Hosted subset requires a distributed Transport")
		}
		netOpts := []msgnet.NetOption{msgnet.WithNetCounters(counters)}
		if cfg.Drop != nil {
			netOpts = append(netOpts, msgnet.WithDropPolicy(cfg.Drop))
		}
		tr = transport.NewChan(n, cfg.Links, netOpts...)
	} else {
		if tr.N() != n {
			return nil, fmt.Errorf("rt: transport spans %d processes, GSM has %d", tr.N(), n)
		}
		rpc, _ = tr.(transport.RPC)
		if len(hosted) < n && rpc == nil {
			return nil, errors.New("rt: Config.Hosted subset requires a Transport implementing transport.RPC")
		}
		if cfg.Drop != nil {
			// The drop decision happens above the wire, so the fair-loss
			// adversary composes with any backend. The RPC plane is not
			// wrapped: remote register access models RDMA, not links.
			tr = transport.NewLossy(tr, cfg.Drop, counters)
		}
	}
	if len(hosted) == n {
		rpc = nil // every owner is local; never leave the process
	}

	memOpts := []shm.Option{shm.WithCounters(counters)}
	if cfg.Durable != nil {
		memOpts = append(memOpts, shm.WithJournal(cfg.Durable))
	}
	h := &Group{
		n:         n,
		hosted:    hosted,
		hostedSet: hostedSet,
		mem:       shm.NewMemory(shm.NewUniformDomain(cfg.GSM), memOpts...),
		tr:        tr,
		rpc:       rpc,
		counters:  counters,
		registry:  registry,
		durable:   cfg.Durable,
		traceRec:  cfg.Trace,
		spans:     cfg.Flight.Scope(cfg.SpanGroup, registry),
		logf:      cfg.Logf,
		procs:     make([]*rtProc, n),
		errs:      make(map[core.ProcID]error),
		stopCh:    make(chan struct{}),
	}
	// Seed recovered registers before any handler or process can observe
	// the memory: recovery must look like the state simply survived.
	if cfg.Durable != nil {
		for ref, v := range cfg.Durable.Recovered() {
			h.mem.Restore(ref, v)
			counters.Record(ref.Owner, metrics.RecoveredRegisters, 1)
		}
	}
	// Resolve the transport's span planes once, not per op. The adversary
	// wrappers forward them, so wrapping does not lose the trace context.
	h.spanTr, _ = tr.(transport.SpanCarrier)
	if rpc != nil {
		h.srpc, _ = rpc.(transport.SpanRPC)
		if h.srpc != nil {
			h.srpc.SetSpanHandler(h.serveMemSpan)
		} else {
			rpc.SetHandler(h.serveMem)
		}
	}
	// Instrument the transport (after any adversary wrapping, before Dial)
	// so backends with wire events — frames, reconnects, RPCs — report into
	// the same registry as the host's own counters.
	if in, ok := tr.(transport.Instrumentable); ok {
		in.Instrument(registry)
	}
	if err := tr.Dial(); err != nil {
		return nil, fmt.Errorf("rt: transport dial: %w", err)
	}
	for _, p := range hosted {
		ns := cfg.GSM.Neighbors(int(p))
		neighbors := make([]core.ProcID, len(ns))
		for i, q := range ns {
			neighbors[i] = core.ProcID(q)
		}
		h.procs[p] = &rtProc{
			id:        p,
			rng:       rand.New(rand.NewSource(cfg.Seed ^ (0x9e3779b9 * int64(p+1)))),
			exposed:   make(map[string]core.Value),
			neighbors: neighbors,
		}
	}
	h.allProcsInit(alg)
	return h, nil
}

// hostedProcs validates and normalizes the hosted set (empty means all).
func hostedProcs(n int, req []core.ProcID) ([]core.ProcID, map[core.ProcID]bool, error) {
	set := make(map[core.ProcID]bool, len(req))
	if len(req) == 0 {
		out := make([]core.ProcID, n)
		for p := 0; p < n; p++ {
			out[p] = core.ProcID(p)
			set[core.ProcID(p)] = true
		}
		return out, set, nil
	}
	var out []core.ProcID
	for _, p := range req {
		if int(p) < 0 || int(p) >= n {
			return nil, nil, fmt.Errorf("rt: hosted process %v out of range [0,%d)", p, n)
		}
		if !set[p] {
			set[p] = true
			out = append(out, p)
		}
	}
	return out, set, nil
}

func (h *Group) allProcsInit(alg core.Algorithm) {
	all := make([]core.ProcID, h.n)
	for p := 0; p < h.n; p++ {
		all[p] = core.ProcID(p)
	}
	for _, p := range h.hosted {
		ps := h.procs[p]
		body := alg.ProcessFor(ps.id)
		env := &rtEnv{h: h, ps: ps, all: all}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(stopPanic); ok {
						return
					}
					h.recordErr(ps.id, fmt.Errorf("rt: process %v panicked: %v\n%s", ps.id, rec, debug.Stack()))
				}
			}()
			// Park on the start gate, but let Stop interrupt the wait
			// directly: a host stopped before Start should unwind its
			// processes without depending on Stop's own Start call.
			select {
			case <-h.startCh():
			case <-h.stopCh:
				return
			}
			if err := body(env); err != nil {
				h.recordErr(ps.id, err)
			}
		}()
	}
}

// startCh lazily builds the start gate.
func (h *Group) startCh() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.startGate == nil {
		h.startGate = make(chan struct{})
	}
	return h.startGate
}

func (h *Group) recordErr(p core.ProcID, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.errs[p] = err
}

// Start releases all process goroutines. It may be called once.
func (h *Group) Start() {
	if h.started.Swap(true) {
		return
	}
	h.mu.Lock()
	if h.startGate == nil {
		h.startGate = make(chan struct{})
	}
	gate := h.startGate
	h.startedAt = time.Now()
	h.mu.Unlock()
	close(gate)
}

// finish stamps the elapsed time once, when the last goroutine has exited.
func (h *Group) finish() {
	h.finishOnce.Do(func() {
		h.mu.Lock()
		h.elapsed = time.Since(h.startedAt)
		h.mu.Unlock()
	})
}

// Stop asks every still-running process to unwind at its next operation,
// waits for all goroutines to exit, then closes the transport — which for
// socket backends drains unacknowledged frames before tearing down
// connections. Safe to call multiple times.
func (h *Group) Stop() *Result {
	h.stopped.Store(true)
	h.stopOnce.Do(func() { close(h.stopCh) })
	if !h.started.Load() {
		h.Start()
	}
	h.wg.Wait()
	h.finish()
	h.closeOnce.Do(func() {
		if err := h.tr.Close(); err != nil && h.logf != nil {
			h.logf("rt: transport close: %v", err)
		}
		// The durable store outlives the transport teardown: remote
		// register RPCs served during the drain may still journal.
		if h.durable != nil {
			if err := h.durable.Close(); err != nil && h.logf != nil {
				h.logf("rt: durable close: %v", err)
			}
		}
		if h.onStop != nil {
			h.onStop()
		}
	})
	return h.result()
}

// Wait blocks until every hosted process goroutine has exited on its own
// (returned from its body) and reports the structured run result. Most
// long-running algorithms never halt; use Stop for those.
//
// Wait does not close the transport: with a distributed transport this
// host may still be serving remote register reads for nodes that have not
// finished. Call Stop to release it.
//
// If the host was never started, Wait releases the start gate first, the
// same way Stop does: otherwise every process goroutine would still be
// parked on the gate and Wait would block forever with nothing running.
func (h *Group) Wait() *Result {
	if !h.started.Load() {
		h.Start()
	}
	h.wg.Wait()
	h.finish()
	return h.result()
}

// result snapshots the run outcome.
func (h *Group) result() *Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	errs := make(map[core.ProcID]error, len(h.errs))
	for p, e := range h.errs {
		errs[p] = e
	}
	var steps uint64
	for _, ps := range h.procs {
		if ps != nil {
			steps += ps.steps.Load()
		}
	}
	return &Result{
		Errors:   errs,
		Elapsed:  h.elapsed,
		Steps:    steps,
		Hosted:   append([]core.ProcID(nil), h.hosted...),
		Counters: h.counters,
	}
}

// Errors returns the process errors recorded so far.
func (h *Group) Errors() map[core.ProcID]error {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[core.ProcID]error, len(h.errs))
	for p, e := range h.errs {
		out[p] = e
	}
	return out
}

// Crash crash-stops process p: it unwinds at its next operation, its
// registers survive. Crashing a process hosted elsewhere is a no-op.
func (h *Group) Crash(p core.ProcID) {
	if int(p) < 0 || int(p) >= h.n || h.procs[p] == nil {
		return
	}
	h.procs[p].crashed.Store(true)
}

// Exposed returns the value process p last published under name, or nil.
// Processes hosted elsewhere expose nothing here.
func (h *Group) Exposed(p core.ProcID, name string) core.Value {
	if int(p) < 0 || int(p) >= h.n || h.procs[p] == nil {
		return nil
	}
	ps := h.procs[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.exposed[name]
}

// Memory returns the local shared register store for observer-level
// inspection. With a distributed transport it holds only the registers
// owned by processes hosted here.
func (h *Group) Memory() *shm.Memory { return h.mem }

// Transport returns the message transport the host runs over (after any
// adversary wrapping).
func (h *Group) Transport() transport.Transport { return h.tr }

// Network returns the underlying in-process msgnet.Network when the host
// runs over the channel backend, for observer-level inspection; it returns
// nil over any other transport.
func (h *Group) Network() *msgnet.Network {
	if c, ok := h.tr.(*transport.Chan); ok {
		return c.Network()
	}
	return nil
}

// Counters returns the live metrics counters.
func (h *Group) Counters() *metrics.Counters { return h.counters }

// Registry returns the run's observability registry: the same counters as
// Counters plus the latency histograms fed by the transport and the
// remote-register RPC path. Never nil.
func (h *Group) Registry() *metrics.Registry { return h.registry }

// Flight returns the span flight recorder this group records into, or nil
// when span tracing is off.
func (h *Group) Flight() *trace.Flight { return h.spans.Flight() }

// N returns the system size.
func (h *Group) N() int { return h.n }

// Hosted returns the processes this host runs.
func (h *Group) Hosted() []core.ProcID { return append([]core.ProcID(nil), h.hosted...) }

// stopPanic unwinds a process goroutine on stop/crash.
type stopPanic struct{}

// rtEnv implements core.Env on the real-time host.
type rtEnv struct {
	h   *Group
	ps  *rtProc
	all []core.ProcID
}

var _ core.Env = (*rtEnv)(nil)

// step accounts one operation and unwinds if the host stopped or the
// process crashed.
func (e *rtEnv) step() {
	if e.h.stopped.Load() || e.ps.crashed.Load() {
		panic(stopPanic{})
	}
	e.ps.steps.Add(1)
	e.h.counters.Record(e.ps.id, metrics.Steps, 1)
}

// ID implements core.Env.
func (e *rtEnv) ID() core.ProcID { return e.ps.id }

// N implements core.Env.
func (e *rtEnv) N() int { return e.h.n }

// Procs implements core.Env.
func (e *rtEnv) Procs() []core.ProcID { return e.all }

// Neighbors implements core.Env.
func (e *rtEnv) Neighbors() []core.ProcID { return e.ps.neighbors }

// traceOp records one operation into the run trace. Step carries the
// process's local step count — the real-time analogue of the simulator's
// global step. Yields are deliberately not traced: real-time polling loops
// would flood the bounded ring with them and evict the events worth
// keeping. Call sites guard on h.traceRec != nil before rendering the note
// so an untraced run pays nothing.
func (e *rtEnv) traceOp(k trace.Kind, ref core.Ref, to core.ProcID, note string) {
	e.h.traceRec.Record(trace.Event{
		Step: e.ps.steps.Load(),
		Proc: e.ps.id,
		Kind: k,
		Ref:  ref,
		To:   to,
		Note: note,
	})
}

// Send implements core.Env. With span tracing on, the send starts a span
// (head-sampled) whose context rides the wire frame to the receiver; the
// Lamport clock ticks on every send either way, so the clock condition
// holds for unsampled traffic too.
func (e *rtEnv) Send(to core.ProcID, payload core.Value) error {
	e.step()
	if e.h.traceRec != nil {
		e.traceOp(trace.Send, core.Ref{}, to, fmt.Sprintf("%v", payload))
	}
	h := e.h
	if h.spans == nil {
		return h.tr.Send(e.ps.id, to, payload)
	}
	sp := h.spans.Start(e.ps.id, trace.Send, fmt.Sprintf("→%v %v", to, payload))
	sc := h.spans.Outbound(sp)
	var err error
	if h.spanTr != nil {
		err = h.spanTr.SendSpan(e.ps.id, to, payload, sc)
	} else {
		err = h.tr.Send(e.ps.id, to, payload)
	}
	sp.Finish(err)
	return err
}

// Broadcast implements core.Env. One span covers the whole fan-out; every
// copy carries the same context.
func (e *rtEnv) Broadcast(payload core.Value) error {
	e.step()
	if e.h.traceRec != nil {
		e.traceOp(trace.Broadcast, core.Ref{}, core.NoProc, fmt.Sprintf("%v", payload))
	}
	h := e.h
	if h.spans == nil {
		return h.tr.Broadcast(e.ps.id, payload)
	}
	sp := h.spans.Start(e.ps.id, trace.Broadcast, fmt.Sprintf("%v", payload))
	sc := h.spans.Outbound(sp)
	var err error
	if h.spanTr != nil {
		err = h.spanTr.BroadcastSpan(e.ps.id, payload, sc)
	} else {
		err = h.tr.Broadcast(e.ps.id, payload)
	}
	sp.Finish(err)
	return err
}

// TryRecv implements core.Env. A delivered message's trace context is the
// receive edge: a traced message records a Recv span parented to the
// sender's span, an untraced one still merges its Lamport clock.
func (e *rtEnv) TryRecv() (core.Message, bool) {
	if e.h.stopped.Load() || e.ps.crashed.Load() {
		panic(stopPanic{})
	}
	m, ok := e.h.tr.TryRecv(e.ps.id)
	if ok && e.h.spans != nil {
		if m.Span.Traced() {
			sp := e.h.spans.StartRemote(e.ps.id, trace.Recv, fmt.Sprintf("←%v", m.From), m.Span)
			sp.Finish(nil)
		} else {
			e.h.spans.Observe(m.Span.Clock)
		}
	}
	return m, ok
}

// Read implements core.Env. The span, when sampled, travels with the
// remote-register RPC and parents the owner node's Serve span.
func (e *rtEnv) Read(ref core.Ref) (core.Value, error) {
	e.step()
	if e.h.traceRec != nil {
		e.traceOp(trace.RegRead, ref, core.NoProc, "")
	}
	var sp *trace.Span
	if e.h.spans != nil {
		sp = e.h.spans.Start(e.ps.id, trace.RegRead, fmt.Sprintf("%v", ref))
	}
	v, err := e.h.readReg(e.ps.id, ref, sp)
	sp.Finish(err)
	return v, err
}

// Write implements core.Env.
func (e *rtEnv) Write(ref core.Ref, v core.Value) error {
	e.step()
	if e.h.traceRec != nil {
		e.traceOp(trace.RegWrite, ref, core.NoProc, fmt.Sprintf("%v", v))
	}
	var sp *trace.Span
	if e.h.spans != nil {
		sp = e.h.spans.Start(e.ps.id, trace.RegWrite, fmt.Sprintf("%v", ref))
	}
	err := e.h.writeReg(e.ps.id, ref, v, sp)
	sp.Finish(err)
	return err
}

// CompareAndSwap implements core.Env.
func (e *rtEnv) CompareAndSwap(ref core.Ref, expected, desired core.Value) (bool, core.Value, error) {
	e.step()
	if e.h.traceRec != nil {
		e.traceOp(trace.CAS, ref, core.NoProc, fmt.Sprintf("%v→%v", expected, desired))
	}
	var sp *trace.Span
	if e.h.spans != nil {
		sp = e.h.spans.Start(e.ps.id, trace.CAS, fmt.Sprintf("%v %v→%v", ref, expected, desired))
	}
	swapped, cur, err := e.h.casReg(e.ps.id, ref, expected, desired, sp)
	sp.Finish(err)
	return swapped, cur, err
}

// Yield implements core.Env: one step plus a scheduling hint so that
// polling loops do not monopolize an OS thread.
func (e *rtEnv) Yield() {
	e.step()
	runtime.Gosched()
}

// LocalSteps implements core.Env.
func (e *rtEnv) LocalSteps() uint64 { return e.ps.steps.Load() }

// Expose implements core.Env.
func (e *rtEnv) Expose(name string, v core.Value) {
	if e.h.traceRec != nil {
		e.traceOp(trace.Expose, core.Ref{}, core.NoProc, fmt.Sprintf("%s=%v", name, v))
	}
	e.ps.mu.Lock()
	e.ps.exposed[name] = v
	e.ps.mu.Unlock()
}

// Rand implements core.Env. The source is confined to the owning
// goroutine.
func (e *rtEnv) Rand() *rand.Rand { return e.ps.rng }

// Logf implements core.Env: the event goes to the run trace (if any) and
// to Config.Logf (if any), prefixed with the process id and its local step
// count — the real-time analogue of the simulator's global step prefix.
func (e *rtEnv) Logf(format string, args ...any) {
	h := e.h
	if h.traceRec == nil && h.logf == nil {
		return
	}
	note := fmt.Sprintf(format, args...)
	h.traceRec.Record(trace.Event{
		Step: e.ps.steps.Load(),
		Proc: e.ps.id,
		Kind: trace.Log,
		To:   core.NoProc,
		Note: note,
	})
	if h.logf != nil {
		h.logf("[local %d] %v: %s", e.ps.steps.Load(), e.ps.id, note)
	}
}
