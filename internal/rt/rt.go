// Package rt is the real-time host for m&m algorithms: one goroutine per
// process, channels-and-mutexes substrates, true parallelism.
//
// The same algorithm code that runs under the deterministic simulator
// (internal/sim) runs here unmodified — the core.Env contract is
// identical; only the notion of a "step" changes from a scheduler grant to
// an actual operation. The real-time host exists for two reasons: to show
// that the algorithms are real programs rather than simulator artifacts,
// and to measure wall-clock performance shapes (register ops vs. message
// ops, scaling with n and the G_SM degree) on real hardware.
//
// Runs are not deterministic: asynchrony comes from the Go scheduler.
// Every safety property must therefore hold for *any* interleaving, which
// is exactly what the paper's algorithms promise (and -race verifies the
// substrate side).
package rt

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/graph"
	"github.com/mnm-model/mnm/internal/metrics"
	"github.com/mnm-model/mnm/internal/msgnet"
	"github.com/mnm-model/mnm/internal/shm"
)

// Config describes a real-time m&m system.
type Config struct {
	// GSM is the shared-memory graph; its vertex count is the system
	// size. Required.
	GSM *graph.Graph
	// Links selects reliable or fair-lossy links. Defaults to reliable.
	Links msgnet.LinkKind
	// Drop is the fair-loss drop policy (fair-lossy links only).
	Drop msgnet.DropPolicy
	// Seed derives per-process randomness.
	Seed int64
	// Counters receives metrics; one is created if nil.
	Counters *metrics.Counters
}

// Host runs an algorithm with real concurrency.
type Host struct {
	n        int
	mem      *shm.Memory
	net      *msgnet.Network
	counters *metrics.Counters
	procs    []*rtProc
	wg       sync.WaitGroup
	stopped  atomic.Bool
	started  atomic.Bool

	mu        sync.Mutex
	errs      map[core.ProcID]error
	startGate chan struct{}
}

type rtProc struct {
	id      core.ProcID
	steps   atomic.Uint64
	crashed atomic.Bool
	rng     *rand.Rand // used only by the owning goroutine

	mu      sync.Mutex
	exposed map[string]core.Value

	neighbors []core.ProcID
}

// New builds a host for alg over the system described by cfg. Processes do
// not run until Start is called.
func New(cfg Config, alg core.Algorithm) (*Host, error) {
	if cfg.GSM == nil {
		return nil, errors.New("rt: Config.GSM is required")
	}
	n := cfg.GSM.N()
	if n == 0 {
		return nil, errors.New("rt: empty system")
	}
	if cfg.Links == 0 {
		cfg.Links = msgnet.Reliable
	}
	counters := cfg.Counters
	if counters == nil {
		counters = metrics.NewCounters(n)
	}
	netOpts := []msgnet.NetOption{
		msgnet.WithAutoDeliver(),
		msgnet.WithNetCounters(counters),
	}
	if cfg.Drop != nil {
		netOpts = append(netOpts, msgnet.WithDropPolicy(cfg.Drop))
	}
	h := &Host{
		n:        n,
		mem:      shm.NewMemory(shm.NewUniformDomain(cfg.GSM), shm.WithCounters(counters)),
		net:      msgnet.NewNetwork(n, cfg.Links, netOpts...),
		counters: counters,
		procs:    make([]*rtProc, n),
		errs:     make(map[core.ProcID]error),
	}
	for p := 0; p < n; p++ {
		ns := cfg.GSM.Neighbors(p)
		neighbors := make([]core.ProcID, len(ns))
		for i, q := range ns {
			neighbors[i] = core.ProcID(q)
		}
		h.procs[p] = &rtProc{
			id:        core.ProcID(p),
			rng:       rand.New(rand.NewSource(cfg.Seed ^ (0x9e3779b9 * int64(p+1)))),
			exposed:   make(map[string]core.Value),
			neighbors: neighbors,
		}
	}
	h.allProcsInit(alg)
	return h, nil
}

func (h *Host) allProcsInit(alg core.Algorithm) {
	all := make([]core.ProcID, h.n)
	for p := 0; p < h.n; p++ {
		all[p] = core.ProcID(p)
	}
	for p := 0; p < h.n; p++ {
		ps := h.procs[p]
		body := alg.ProcessFor(ps.id)
		env := &rtEnv{h: h, ps: ps, all: all}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(stopPanic); ok {
						return
					}
					h.recordErr(ps.id, fmt.Errorf("rt: process %v panicked: %v\n%s", ps.id, rec, debug.Stack()))
				}
			}()
			<-h.startCh()
			if err := body(env); err != nil {
				h.recordErr(ps.id, err)
			}
		}()
	}
}

// startCh lazily builds the start gate.
func (h *Host) startCh() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.startGate == nil {
		h.startGate = make(chan struct{})
	}
	return h.startGate
}

func (h *Host) recordErr(p core.ProcID, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.errs[p] = err
}

// Start releases all process goroutines. It may be called once.
func (h *Host) Start() {
	if h.started.Swap(true) {
		return
	}
	h.mu.Lock()
	if h.startGate == nil {
		h.startGate = make(chan struct{})
	}
	gate := h.startGate
	h.mu.Unlock()
	close(gate)
}

// Stop asks every still-running process to unwind at its next operation
// and waits for all goroutines to exit. Safe to call multiple times.
func (h *Host) Stop() {
	h.stopped.Store(true)
	if !h.started.Load() {
		h.Start()
	}
	h.wg.Wait()
}

// Wait blocks until every process goroutine has exited on its own
// (returned from its body) and reports their errors. Most long-running
// algorithms never halt; use Stop for those.
//
// If the host was never started, Wait releases the start gate first, the
// same way Stop does: otherwise every process goroutine would still be
// parked on the gate and Wait would block forever with nothing running.
func (h *Host) Wait() map[core.ProcID]error {
	if !h.started.Load() {
		h.Start()
	}
	h.wg.Wait()
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[core.ProcID]error, len(h.errs))
	for p, e := range h.errs {
		out[p] = e
	}
	return out
}

// Errors returns the process errors recorded so far.
func (h *Host) Errors() map[core.ProcID]error {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[core.ProcID]error, len(h.errs))
	for p, e := range h.errs {
		out[p] = e
	}
	return out
}

// Crash crash-stops process p: it unwinds at its next operation, its
// registers survive.
func (h *Host) Crash(p core.ProcID) {
	if int(p) < 0 || int(p) >= h.n {
		return
	}
	h.procs[p].crashed.Store(true)
}

// Exposed returns the value process p last published under name, or nil.
func (h *Host) Exposed(p core.ProcID, name string) core.Value {
	if int(p) < 0 || int(p) >= h.n {
		return nil
	}
	ps := h.procs[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.exposed[name]
}

// Memory returns the shared register store for observer-level inspection.
func (h *Host) Memory() *shm.Memory { return h.mem }

// Counters returns the live metrics counters.
func (h *Host) Counters() *metrics.Counters { return h.counters }

// N returns the system size.
func (h *Host) N() int { return h.n }

// stopPanic unwinds a process goroutine on stop/crash.
type stopPanic struct{}

// rtEnv implements core.Env on the real-time host.
type rtEnv struct {
	h   *Host
	ps  *rtProc
	all []core.ProcID
}

var _ core.Env = (*rtEnv)(nil)

// step accounts one operation and unwinds if the host stopped or the
// process crashed.
func (e *rtEnv) step() {
	if e.h.stopped.Load() || e.ps.crashed.Load() {
		panic(stopPanic{})
	}
	e.ps.steps.Add(1)
	e.h.counters.Record(e.ps.id, metrics.Steps, 1)
}

// ID implements core.Env.
func (e *rtEnv) ID() core.ProcID { return e.ps.id }

// N implements core.Env.
func (e *rtEnv) N() int { return e.h.n }

// Procs implements core.Env.
func (e *rtEnv) Procs() []core.ProcID { return e.all }

// Neighbors implements core.Env.
func (e *rtEnv) Neighbors() []core.ProcID { return e.ps.neighbors }

// Send implements core.Env.
func (e *rtEnv) Send(to core.ProcID, payload core.Value) error {
	e.step()
	return e.h.net.Send(e.ps.id, to, payload, 0)
}

// Broadcast implements core.Env.
func (e *rtEnv) Broadcast(payload core.Value) error {
	e.step()
	return e.h.net.Broadcast(e.ps.id, payload, 0)
}

// TryRecv implements core.Env.
func (e *rtEnv) TryRecv() (core.Message, bool) {
	if e.h.stopped.Load() || e.ps.crashed.Load() {
		panic(stopPanic{})
	}
	return e.h.net.Recv(e.ps.id)
}

// Read implements core.Env.
func (e *rtEnv) Read(ref core.Ref) (core.Value, error) {
	e.step()
	return e.h.mem.Read(e.ps.id, ref)
}

// Write implements core.Env.
func (e *rtEnv) Write(ref core.Ref, v core.Value) error {
	e.step()
	return e.h.mem.Write(e.ps.id, ref, v)
}

// CompareAndSwap implements core.Env.
func (e *rtEnv) CompareAndSwap(ref core.Ref, expected, desired core.Value) (bool, core.Value, error) {
	e.step()
	return e.h.mem.CompareAndSwap(e.ps.id, ref, expected, desired)
}

// Yield implements core.Env: one step plus a scheduling hint so that
// polling loops do not monopolize an OS thread.
func (e *rtEnv) Yield() {
	e.step()
	runtime.Gosched()
}

// LocalSteps implements core.Env.
func (e *rtEnv) LocalSteps() uint64 { return e.ps.steps.Load() }

// Expose implements core.Env.
func (e *rtEnv) Expose(name string, v core.Value) {
	e.ps.mu.Lock()
	e.ps.exposed[name] = v
	e.ps.mu.Unlock()
}

// Rand implements core.Env. The source is confined to the owning
// goroutine.
func (e *rtEnv) Rand() *rand.Rand { return e.ps.rng }

// Logf implements core.Env as a no-op on the real-time host.
func (e *rtEnv) Logf(string, ...any) {}
