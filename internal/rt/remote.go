// Remote shared-register access for distributed real-time runs.
//
// In the m&m model every register physically resides at its owner (§5.3 of
// the paper: the owner accesses it locally, neighbors access it remotely
// over their shared-memory connection). The real-time host realizes that
// placement literally: when Config.Hosted is a strict subset, a register
// whose owner lives on another node is read, written or CAS'd by a
// synchronous call over the transport's RPC plane, and the owner's host
// serves it out of its local shm.Memory. Because the caller's process id
// travels with the request and the check runs against the owner's domain,
// shared-memory access control (core.ErrAccessDenied outside
// {owner} ∪ neighbors(owner)) is enforced exactly as in a single process.
package rt

import (
	"fmt"
	"time"

	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/metrics"
	"github.com/mnm-model/mnm/internal/trace"
)

// memReadReq asks the owner's node to read Ref on behalf of Caller.
type memReadReq struct {
	Caller core.ProcID
	Ref    core.Ref
}

// memReadResp carries the value read.
type memReadResp struct {
	Val core.Value
}

// memWriteReq asks the owner's node to write Ref on behalf of Caller.
// A successful write has a nil response payload.
type memWriteReq struct {
	Caller core.ProcID
	Ref    core.Ref
	Val    core.Value
}

// memCASReq asks the owner's node to compare-and-swap Ref on behalf of
// Caller.
type memCASReq struct {
	Caller   core.ProcID
	Ref      core.Ref
	Expected core.Value
	Desired  core.Value
}

// memCASResp carries the CAS outcome.
type memCASResp struct {
	Swapped bool
	Current core.Value
}

// callRemote performs one register RPC, unwinding the calling process
// goroutine as soon as the host stops: a peer that has already shut down
// would otherwise hold the caller inside the transport until its call
// timeout, stalling Stop for seconds. The abandoned Call completes (or
// times out) in the background; its buffered channel lets it exit.
//
// sp is the caller's span for the operation (nil when unsampled or
// tracing is off): its context rides the request frame over the span RPC
// plane, and the server's response context merges back into the local
// Lamport clock — the two wire edges of a traced remote register op.
func (h *Group) callRemote(p core.ProcID, owner core.ProcID, req core.Value, sp *trace.Span) (core.Value, error) {
	type outcome struct {
		v   core.Value
		err error
	}
	sc := h.spans.Outbound(sp)
	ch := make(chan outcome, 1)
	go func() {
		var v core.Value
		var err error
		if h.srpc != nil {
			var rsc core.SpanContext
			v, rsc, err = h.srpc.CallSpan(p, owner, req, sc)
			h.spans.Observe(rsc.Clock)
		} else {
			v, err = h.rpc.Call(p, owner, req)
		}
		// Never blocks: cap-1 channel, and this goroutine is its only
		// sender. A select/default would hide a broken invariant as a
		// silently dropped reply; a visible block is the better failure.
		ch <- outcome{v, err} //mnmvet:allow stopselect buffered(1), sole sender
	}()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-h.stopCh:
		panic(stopPanic{})
	}
}

// readReg reads ref for process p, locally when the owner is hosted here
// and over RPC otherwise.
func (h *Group) readReg(p core.ProcID, ref core.Ref, sp *trace.Span) (core.Value, error) {
	if h.rpc == nil || h.hostedSet[ref.Owner] {
		return h.mem.Read(p, ref)
	}
	start := time.Now()
	resp, err := h.callRemote(p, ref.Owner, memReadReq{Caller: p, Ref: ref}, sp)
	h.registry.Histogram(metrics.HistRemoteRead).Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	rr, ok := resp.(memReadResp)
	if !ok {
		return nil, fmt.Errorf("rt: remote read of %v returned %T", ref, resp)
	}
	return rr.Val, nil
}

// writeReg writes ref for process p, locally or over RPC.
func (h *Group) writeReg(p core.ProcID, ref core.Ref, v core.Value, sp *trace.Span) error {
	if h.rpc == nil || h.hostedSet[ref.Owner] {
		return h.mem.Write(p, ref, v)
	}
	start := time.Now()
	_, err := h.callRemote(p, ref.Owner, memWriteReq{Caller: p, Ref: ref, Val: v}, sp)
	h.registry.Histogram(metrics.HistRemoteWrite).Observe(time.Since(start))
	return err
}

// casReg compare-and-swaps ref for process p, locally or over RPC.
func (h *Group) casReg(p core.ProcID, ref core.Ref, expected, desired core.Value, sp *trace.Span) (bool, core.Value, error) {
	if h.rpc == nil || h.hostedSet[ref.Owner] {
		return h.mem.CompareAndSwap(p, ref, expected, desired)
	}
	start := time.Now()
	resp, err := h.callRemote(p, ref.Owner, memCASReq{Caller: p, Ref: ref, Expected: expected, Desired: desired}, sp)
	h.registry.Histogram(metrics.HistRemoteCAS).Observe(time.Since(start))
	if err != nil {
		return false, nil, err
	}
	cr, ok := resp.(memCASResp)
	if !ok {
		return false, nil, fmt.Errorf("rt: remote CAS of %v returned %T", ref, resp)
	}
	return cr.Swapped, cr.Current, nil
}

// reqName renders a register request for span naming.
func reqName(req core.Value) string {
	switch r := req.(type) {
	case memReadReq:
		return fmt.Sprintf("read %v", r.Ref)
	case memWriteReq:
		return fmt.Sprintf("write %v", r.Ref)
	case memCASReq:
		return fmt.Sprintf("cas %v", r.Ref)
	default:
		return fmt.Sprintf("%T", req)
	}
}

// serveMemSpan is the span-aware RPC handler, installed when the
// transport has a span plane: a traced request records a Serve span
// parented to the caller's span, and the response carries this node's
// clock (plus the serve span's identity) back so the caller's timeline
// orders the round trip. Untraced requests still merge the clock.
func (h *Group) serveMemSpan(from core.ProcID, req core.Value, sc core.SpanContext) (core.Value, core.SpanContext, error) {
	sp := h.spans.StartRemote(from, trace.Serve, reqName(req), sc)
	if sp == nil {
		h.spans.Observe(sc.Clock)
	}
	v, err := h.serveMem(from, req)
	rsc := h.spans.Outbound(sp)
	sp.Finish(err)
	return v, rsc, err
}

// serveMem is the RPC handler installed on the transport: it serves
// register operations for registers owned by processes hosted here, out of
// the local shm.Memory (which enforces the shared-memory domain against
// the calling process id carried in the request).
func (h *Group) serveMem(_ core.ProcID, req core.Value) (core.Value, error) {
	switch r := req.(type) {
	case memReadReq:
		if !h.hostedSet[r.Ref.Owner] {
			return nil, fmt.Errorf("rt: register %v not owned by this node", r.Ref)
		}
		v, err := h.mem.Read(r.Caller, r.Ref)
		if err != nil {
			return nil, err
		}
		return memReadResp{Val: v}, nil
	case memWriteReq:
		if !h.hostedSet[r.Ref.Owner] {
			return nil, fmt.Errorf("rt: register %v not owned by this node", r.Ref)
		}
		return nil, h.mem.Write(r.Caller, r.Ref, r.Val)
	case memCASReq:
		if !h.hostedSet[r.Ref.Owner] {
			return nil, fmt.Errorf("rt: register %v not owned by this node", r.Ref)
		}
		swapped, current, err := h.mem.CompareAndSwap(r.Caller, r.Ref, r.Expected, r.Desired)
		if err != nil {
			return nil, err
		}
		return memCASResp{Swapped: swapped, Current: current}, nil
	default:
		return nil, fmt.Errorf("rt: unknown RPC request %T", req)
	}
}
