package rt

import (
	"testing"
	"time"

	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/graph"
	"github.com/mnm-model/mnm/internal/leader"
	"github.com/mnm-model/mnm/internal/mutex"
	"github.com/mnm-model/mnm/internal/paxos"
)

// TestPaxosRealtime runs Ω-driven Paxos under true goroutine concurrency:
// the Go scheduler provides the (practically always sufficient) fairness,
// and agreement must hold for whatever interleaving occurs.
func TestPaxosRealtime(t *testing.T) {
	inputs := []core.Value{"a", "b", "c", "d"}
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(4), Seed: 3}},
		paxos.New(paxos.Config{Inputs: inputs, HaltAfterDecide: true}))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	errs := h.Wait().Errors
	for p, e := range errs {
		t.Fatalf("process %v: %v", p, e)
	}
	var agreed core.Value
	for p := core.ProcID(0); p < 4; p++ {
		v := h.Exposed(p, paxos.DecisionKey)
		if v == nil {
			t.Fatalf("process %v undecided", p)
		}
		if agreed == nil {
			agreed = v
		} else if agreed != v {
			t.Fatalf("disagreement: %v vs %v", agreed, v)
		}
	}
}

// TestBakeryRealtime hammers the bakery lock with real concurrency; a
// shared plain counter guarded by the lock must end exactly at the total
// increment count (mutual exclusion makes the unsynchronized increments
// safe — and -race agrees only if the lock really works... note the
// counter lives in lock-protected shared registers to stay race-clean).
func TestBakeryRealtime(t *testing.T) {
	const perProc = 20
	b := mutex.NewBakery("rt")
	counterRef := core.Reg(0, "counter")
	alg := core.AlgorithmFunc(func(id core.ProcID) core.Process {
		return func(env core.Env) error {
			for i := 0; i < perProc; i++ {
				if err := b.Acquire(env); err != nil {
					return err
				}
				raw, err := env.Read(counterRef)
				if err != nil {
					return err
				}
				cur := 0
				if raw != nil {
					cur = raw.(int)
				}
				if err := env.Write(counterRef, cur+1); err != nil {
					return err
				}
				if err := b.Release(env); err != nil {
					return err
				}
			}
			return nil
		}
	})
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(4), Seed: 9}}, alg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	errs := h.Wait().Errors
	for p, e := range errs {
		t.Fatalf("process %v: %v", p, e)
	}
	raw, _ := h.Memory().Peek(counterRef)
	if raw != 4*perProc {
		t.Errorf("counter = %v, want %d (lost updates ⇒ mutual exclusion broken)", raw, 4*perProc)
	}
}

// TestMnMLockRealtime does the same for the m&m lock (wakeups by message
// under real concurrency).
func TestMnMLockRealtime(t *testing.T) {
	const perProc = 20
	l := mutex.NewMnMLock(0, "rt")
	counterRef := core.Reg(0, "counter")
	alg := core.AlgorithmFunc(func(id core.ProcID) core.Process {
		return func(env core.Env) error {
			var in core.Inbox
			for i := 0; i < perProc; i++ {
				tk, err := l.Acquire(env, &in)
				if err != nil {
					return err
				}
				raw, err := env.Read(counterRef)
				if err != nil {
					return err
				}
				cur := 0
				if raw != nil {
					cur = raw.(int)
				}
				if err := env.Write(counterRef, cur+1); err != nil {
					return err
				}
				if err := l.Release(env, tk); err != nil {
					return err
				}
			}
			return nil
		}
	})
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(4), Seed: 2}}, alg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	errs := h.Wait().Errors
	for p, e := range errs {
		t.Fatalf("process %v: %v", p, e)
	}
	raw, _ := h.Memory().Peek(counterRef)
	if raw != 4*perProc {
		t.Errorf("counter = %v, want %d", raw, 4*perProc)
	}
}

// TestMsgOmegaRealtime runs the classic heartbeat Ω on the real-time host
// (in-process channels are timely links, so it should stabilize).
func TestMsgOmegaRealtime(t *testing.T) {
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Edgeless(4), Seed: 4}},
		leader.NewMsgOmega(leader.MsgOmegaConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	defer h.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l, ok := commonLeader(h, 4); ok {
			time.Sleep(30 * time.Millisecond)
			if l2, ok2 := commonLeader(h, 4); ok2 && l2 == l {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("classic Ω did not stabilize on the real-time host")
}
