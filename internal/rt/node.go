// Node: the per-OS-process half of the redesigned runtime API. A Node
// owns what is physical — the shared transport (listener, connections,
// frame plane), the directory, the root metrics registry — and hands out
// Groups, which own what is logical: one shard's GSM, hosted set,
// register namespace and process goroutines. Thousands of groups
// multiplex over one node's connections; each group's Stop detaches only
// its shard, and Node.Close tears the whole process down.

package rt

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/directory"
	"github.com/mnm-model/mnm/internal/durable"
	"github.com/mnm-model/mnm/internal/metrics"
	"github.com/mnm-model/mnm/internal/runcfg"
	"github.com/mnm-model/mnm/internal/trace"
	"github.com/mnm-model/mnm/internal/transport"
)

// NodeConfig describes the per-process plane shared by every group.
type NodeConfig struct {
	// Transport is the node's shared message plane. To host groups it
	// must implement transport.Sharded (transport/tcp.Transport and
	// transport.Chan both do). Nil builds a transport-less node whose
	// groups each run over a private in-process channel backend — the
	// single-machine multi-tenant configuration.
	Transport transport.Transport

	// Directory maps groups to the nodes hosting their processes. Nil
	// defaults to directory.AllLocal (every group entirely on this node).
	Directory directory.Directory

	// Registry is the node's root observability plane. Each group gets a
	// labeled sub-registry ("group-<id>") under it, so one scrape of the
	// root renders the node-level frame counters plus every shard's rows.
	// Nil synthesizes an empty root registry.
	Registry *metrics.Registry

	// Flight, if non-nil, is the node's span flight recorder, shared by
	// every group the way the transport and root registry are: each group
	// records into it under its "group-<id>" label, and one /trace scrape
	// dumps the whole node. Nil disables span tracing.
	Flight *trace.Flight

	// Logf, if non-nil, receives node- and group-lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// GroupConfig describes one shard to be opened on a Node. The embedded
// RunConfig carries the host-independent knobs (GSM is required; Seed,
// Links, Drop, Trace, Logf as usual — the deprecated Counters shim is
// ignored here, the group always meters into its sub-registry).
type GroupConfig struct {
	runcfg.RunConfig

	// Registry, if non-nil, overrides the group's metering plane. The
	// default is a "group-<id>" sub-registry of the node's root registry,
	// which is what the exporters and /status render per group.
	Registry *metrics.Registry

	// Durable, if non-nil, journals this group's register mutations and
	// seeds its memory with the store's recovered state — see
	// rt.Config.Durable. Each group needs its own store (its own WAL
	// directory); the group closes it on Stop.
	Durable *durable.Registers
}

// Node is the per-OS-process runtime object: one shared transport, one
// directory, one root registry, many Groups.
type Node struct {
	tr      transport.Transport
	sharded transport.Sharded // nil when tr is nil or not sharded
	dir     directory.Directory
	reg     *metrics.Registry
	flight  *trace.Flight // nil when span tracing is off
	logf    func(format string, args ...any)
	addr    string // own listen address, "" when the transport has none

	mu     sync.Mutex
	groups map[transport.GroupID]*Group
	closed bool
}

// NewNode builds the per-process plane. The transport must already be
// constructed (and, for sockets, listening); the node does not dial —
// each group dials its own view when opened.
func NewNode(cfg NodeConfig) (*Node, error) {
	dir := cfg.Directory
	if dir == nil {
		dir = directory.AllLocal{}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry(0)
	}
	n := &Node{
		tr:     cfg.Transport,
		dir:    dir,
		reg:    reg,
		flight: cfg.Flight,
		logf:   cfg.Logf,
		groups: make(map[transport.GroupID]*Group),
	}
	if cfg.Transport != nil {
		n.sharded, _ = cfg.Transport.(transport.Sharded)
		if n.sharded == nil {
			return nil, fmt.Errorf("rt: transport %T cannot host groups (no OpenGroup)", cfg.Transport)
		}
		if a, ok := cfg.Transport.(interface{ Addr() string }); ok {
			n.addr = a.Addr()
		}
		if in, ok := cfg.Transport.(transport.Instrumentable); ok {
			in.Instrument(reg)
		}
	}
	return n, nil
}

// OpenGroup resolves the group through the directory, opens its slice of
// the shared transport, and builds + returns the running Group (started
// lazily, exactly like New: call Start on it). Group IDs must be >= 1;
// group 0 is the transport's base group, built with New.
func (nd *Node) OpenGroup(id transport.GroupID, cfg GroupConfig, alg core.Algorithm) (*Group, error) {
	if id == 0 {
		return nil, errors.New("rt: group 0 is the base group; build it with rt.New")
	}
	if cfg.GSM == nil {
		return nil, errors.New("rt: GroupConfig.GSM is required")
	}
	n := cfg.GSM.N()
	if n == 0 {
		return nil, errors.New("rt: empty group")
	}

	asn, ok := nd.dir.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("rt: directory has no assignment for group %d", id)
	}
	var hosted []core.ProcID
	if !asn.Local() {
		if len(asn.Addrs) != n {
			return nil, fmt.Errorf("rt: group %d assignment spans %d processes, GSM has %d", id, len(asn.Addrs), n)
		}
		if nd.addr == "" {
			return nil, fmt.Errorf("rt: group %d is distributed but the node transport has no listen address", id)
		}
		hosted = asn.HostedAt(nd.addr)
		if len(hosted) == 0 {
			return nil, fmt.Errorf("rt: group %d assigns no process to this node (%s)", id, nd.addr)
		}
	}

	greg := cfg.Registry
	if greg == nil {
		greg = nd.reg.Sub(fmt.Sprintf("group-%d", id), n)
	}

	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if _, dup := nd.groups[id]; dup {
		nd.mu.Unlock()
		return nil, fmt.Errorf("rt: group %d already open on this node", id)
	}
	// Reserve the slot before the blocking work so a concurrent OpenGroup
	// of the same id fails fast instead of racing to the transport.
	nd.groups[id] = nil
	nd.mu.Unlock()

	release := func() {
		nd.mu.Lock()
		delete(nd.groups, id)
		nd.mu.Unlock()
	}

	var gtr transport.Transport
	if nd.sharded != nil {
		var err error
		gtr, err = nd.sharded.OpenGroup(id, transport.GroupConfig{
			N:        n,
			Hosted:   hosted,
			Addrs:    asn.Addrs,
			Registry: greg,
		})
		if err != nil {
			release()
			return nil, fmt.Errorf("rt: open group %d: %w", id, err)
		}
	} else if !asn.Local() {
		release()
		return nil, fmt.Errorf("rt: group %d is distributed but the node has no transport", id)
	}
	// gtr == nil (transport-less node, local assignment) lets New build
	// the group's private channel backend.

	hcfg := Config{
		RunConfig: cfg.RunConfig,
		Transport: gtr,
		Hosted:    hosted,
		Registry:  greg,
		Durable:   cfg.Durable,
		Flight:    nd.flight,
		SpanGroup: fmt.Sprintf("group-%d", id),
	}
	hcfg.Counters = nil // groups always meter into their registry
	if hcfg.Logf == nil {
		hcfg.Logf = nd.logf
	}
	g, err := New(hcfg, alg)
	if err != nil {
		if gtr != nil {
			gtr.Close() // detach the shard we just opened
		}
		release()
		return nil, err
	}
	g.onStop = release

	nd.mu.Lock()
	if nd.closed {
		// Close raced in while we were building: undo.
		nd.mu.Unlock()
		g.Stop()
		return nil, transport.ErrClosed
	}
	nd.groups[id] = g
	nd.mu.Unlock()
	return g, nil
}

// Group returns the open group with the given id, or nil.
func (nd *Node) Group(id transport.GroupID) *Group {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.groups[id]
}

// Groups returns the ids of all open groups, ascending. A group being
// opened concurrently (slot reserved, host not built yet) is skipped.
func (nd *Node) Groups() []transport.GroupID {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	out := make([]transport.GroupID, 0, len(nd.groups))
	for id, g := range nd.groups {
		if g != nil {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Registry returns the node's root observability registry (group
// sub-registries hang off it).
func (nd *Node) Registry() *metrics.Registry { return nd.reg }

// Transport returns the node's shared transport, or nil.
func (nd *Node) Transport() transport.Transport { return nd.tr }

// Addr returns the node's listen address, or "" without one.
func (nd *Node) Addr() string { return nd.addr }

// Close stops every open group (detaching its shard), then closes the
// shared transport — the node-level drain. Safe to call multiple times.
func (nd *Node) Close() error {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil
	}
	nd.closed = true
	open := make([]*Group, 0, len(nd.groups))
	for _, g := range nd.groups {
		if g != nil {
			open = append(open, g)
		}
	}
	nd.mu.Unlock()
	// Stop in parallel: a group's Stop waits for its processes to unwind,
	// and a follower mid-RPC finishes the round trip first — serializing
	// a thousand of those waits would turn shutdown into minutes.
	var wg sync.WaitGroup
	for _, g := range open {
		wg.Add(1)
		go func(g *Group) {
			defer wg.Done()
			g.Stop()
		}(g)
	}
	wg.Wait()
	if nd.tr != nil {
		return nd.tr.Close()
	}
	return nil
}
