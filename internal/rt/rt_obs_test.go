package rt

import (
	"fmt"
	"testing"
	"time"

	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/graph"
	"github.com/mnm-model/mnm/internal/leader"
	"github.com/mnm-model/mnm/internal/metrics"
)

// exposedCommonLeader returns the leader every host's own process currently
// exposes, or NoProc if they do not (yet) agree on one.
func exposedCommonLeader(hosts []*Host) core.ProcID {
	l := core.NoProc
	for i, h := range hosts {
		v, ok := h.Exposed(core.ProcID(i), leader.LeaderKey).(core.ProcID)
		if !ok || v == core.NoProc || (l != core.NoProc && v != l) {
			return core.NoProc
		}
		l = v
	}
	return l
}

// steadyStateWindow checks one sampled span (one Delta per node, node i
// hosting process i) against the Theorem 5.1 steady-state shape: zero
// messages anywhere, at least one local register write by the leader, and
// at least one remote register read per follower metered at the leader's
// node. It reports what disqualified the span otherwise.
func steadyStateWindow(deltas []metrics.Delta, ldr core.ProcID) (bool, string) {
	var msgs int64
	for i := range deltas {
		msgs += deltas[i].Counters.Total(metrics.MsgSent)
	}
	if msgs != 0 {
		return false, fmt.Sprintf("%d messages sent in window", msgs)
	}
	ld := deltas[ldr].Counters
	if w := ld.Of(ldr, metrics.RegWriteLocal); w < 1 {
		return false, "leader recorded no local register writes"
	}
	for i := range deltas {
		p := core.ProcID(i)
		if p == ldr {
			continue
		}
		if r := ld.Of(p, metrics.RegReadRemote); r < 1 {
			return false, fmt.Sprintf("follower %v: no remote reads metered at leader's node", p)
		}
		if c := deltas[i].Counters.Of(p, metrics.RPCIssued); c < 1 {
			return false, fmt.Sprintf("follower %v: no RPCs issued from its own node", p)
		}
	}
	return true, ""
}

// TestLeaderSteadyStateObservableOverTCP is the empirical read of Theorem
// 5.1 through the observability layer: it runs the Fig. 5 leader election
// (shared-memory notifier) as three OS-level nodes over loopback TCP, waits
// for a stable leader, then samples every node's registry over a growing
// span until it shows the steady-state communication pattern — zero
// messages on any link, the leader refreshing its own register locally, and
// each follower's read of the leader's register arriving at the leader's
// node as a remote register operation over the RPC plane.
//
// The follower read period is not knowable in advance: heartbeat timers
// count the follower's LOCAL steps, adapt upward with every false
// accusation during pre-convergence churn, and on a starved machine (one
// CPU, the leader's spin loop monopolizing it) followers advance only tens
// of steps per second — reads can be seconds apart. So instead of fixed
// windows the test grows one continuous sampling span: every tick extends
// the span with fresh samples, any message anywhere restarts it, and the
// span succeeds the moment its cumulative deltas show the steady-state
// shape. The theorem promises such a span eventually exists; churn only
// delays it.
//
// The election timeout is lowered from the default so the follower read
// period stays test-sized; a short timer is safe here because the leader's
// heartbeat advances by thousands between two follower reads, so no false
// accusations result.
func TestLeaderSteadyStateObservableOverTCP(t *testing.T) {
	g := graph.Complete(3)
	alg := leader.New(leader.Config{Notifier: leader.SharedMemoryNotifier, InitialTimeout: 8})
	hosts, _ := newTCPHosts(t, g, 3, alg)
	for _, h := range hosts {
		h.Start()
	}
	// No separate wait for a stable leader: the span loop below already
	// treats "no common leader yet" as churn and keeps re-anchoring, so
	// convergence shares the one generous deadline instead of a second,
	// tighter one.

	samplers := make([]*metrics.Sampler, len(hosts))
	for i, h := range hosts {
		samplers[i] = metrics.NewSampler(h.Registry(), 0, 16) // manual sampling
		defer samplers[i].Stop()
	}

	spanStart := make([]metrics.Sample, len(hosts))
	spanLeader := core.NoProc
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		ldr := exposedCommonLeader(hosts)
		if ldr == core.NoProc || ldr != spanLeader {
			// No agreed leader, or leadership moved: anchor a new span.
			spanLeader = ldr
			for i, s := range samplers {
				spanStart[i] = s.SampleNow()
			}
			time.Sleep(500 * time.Millisecond)
			continue
		}
		time.Sleep(500 * time.Millisecond)
		deltas := make([]metrics.Delta, len(hosts))
		for i, s := range samplers {
			deltas[i] = metrics.DeltaOf(spanStart[i], s.SampleNow())
		}
		steady, why := steadyStateWindow(deltas, ldr)
		if !steady {
			var msgs int64
			for i := range deltas {
				msgs += deltas[i].Counters.Total(metrics.MsgSent)
			}
			if msgs != 0 {
				// A message broke the span — not steady state yet.
				// Restart the span on the next tick.
				spanLeader = core.NoProc
			}
			t.Logf("span of %v not steady yet: %s", deltas[0].Interval().Round(time.Millisecond), why)
			continue
		}
		// The remote reads must also have been timed: each follower's
		// remote-read histogram is fed by its own RPC round trips.
		for i := range hosts {
			if core.ProcID(i) == ldr {
				continue
			}
			if c := hosts[i].Registry().Histogram(metrics.HistRemoteRead).Count(); c == 0 {
				t.Errorf("follower %d: remote-read latency histogram is empty", i)
			}
		}
		t.Logf("steady state observed over %v under leader %v: 0 msgs, %d leader writes, follower reads at leader node",
			deltas[0].Interval().Round(time.Millisecond), ldr, deltas[ldr].Counters.Of(ldr, metrics.RegWriteLocal))
		return
	}
	t.Fatal("no zero-message steady-state span observed within deadline")
}
