package rt

import (
	"testing"
	"time"

	"github.com/mnm-model/mnm/internal/benor"
	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/graph"
	"github.com/mnm-model/mnm/internal/hbo"
	"github.com/mnm-model/mnm/internal/leader"
	"github.com/mnm-model/mnm/internal/regcons"
)

func TestHaltingAlgorithmWaits(t *testing.T) {
	alg := core.AlgorithmFunc(func(id core.ProcID) core.Process {
		return func(env core.Env) error {
			if err := env.Write(core.Reg(env.ID(), "done"), true); err != nil {
				return err
			}
			env.Expose("done", true)
			return nil
		}
	})
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(4)}}, alg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	errs := h.Wait().Errors
	for p, e := range errs {
		t.Errorf("process %v: %v", p, e)
	}
	for p := core.ProcID(0); p < 4; p++ {
		if h.Exposed(p, "done") != true {
			t.Errorf("process %v did not finish", p)
		}
		if v, ok := h.Memory().Peek(core.Reg(p, "done")); !ok || v != true {
			t.Errorf("register of %v missing", p)
		}
	}
}

// TestWaitWithoutStartReleasesGate is the regression test for the Wait
// deadlock: calling Wait before Start used to park forever because every
// process goroutine was still blocked on the start gate. Wait must release
// the gate (like Stop) and then block only until the bodies return.
func TestWaitWithoutStartReleasesGate(t *testing.T) {
	alg := core.AlgorithmFunc(func(id core.ProcID) core.Process {
		return func(env core.Env) error {
			env.Expose("done", true)
			return nil
		}
	})
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(3)}}, alg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[core.ProcID]error, 1)
	go func() { done <- h.Wait().Errors }()
	select {
	case errs := <-done:
		for p, e := range errs {
			t.Errorf("process %v: %v", p, e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait() without Start() deadlocked")
	}
	for p := core.ProcID(0); p < 3; p++ {
		if h.Exposed(p, "done") != true {
			t.Errorf("process %v never ran", p)
		}
	}
}

func TestStopUnwindsInfiniteLoops(t *testing.T) {
	alg := core.AlgorithmFunc(func(id core.ProcID) core.Process {
		return func(env core.Env) error {
			for {
				env.Yield()
			}
		}
	})
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(8)}}, alg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		h.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate the host")
	}
	if errs := h.Errors(); len(errs) != 0 {
		t.Errorf("stop produced process errors: %v", errs)
	}
}

func TestCrashStopsOneProcess(t *testing.T) {
	alg := core.AlgorithmFunc(func(id core.ProcID) core.Process {
		return func(env core.Env) error {
			for {
				env.Expose("steps", env.LocalSteps())
				env.Yield()
			}
		}
	})
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(2)}}, alg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	time.Sleep(10 * time.Millisecond)
	h.Crash(0)
	time.Sleep(10 * time.Millisecond)
	frozen := h.Exposed(0, "steps")
	time.Sleep(10 * time.Millisecond)
	if h.Exposed(0, "steps") != frozen {
		t.Error("crashed process kept stepping")
	}
	h.Stop()
}

func TestPanicContainment(t *testing.T) {
	alg := core.AlgorithmFunc(func(id core.ProcID) core.Process {
		return func(env core.Env) error {
			if env.ID() == 1 {
				panic("bug")
			}
			return nil
		}
	})
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(2)}}, alg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	errs := h.Wait().Errors
	if errs[1] == nil {
		t.Error("panic not recorded")
	}
	if errs[0] != nil {
		t.Errorf("healthy process got error: %v", errs[0])
	}
}

func TestBenOrRealtime(t *testing.T) {
	inputs := []benor.Val{benor.V0, benor.V1, benor.V0, benor.V1, benor.V0}
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Edgeless(5), Seed: 3}},
		benor.New(benor.Config{F: 2, Inputs: inputs, HaltAfterDecide: true}))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	errs := h.Wait().Errors
	for p, e := range errs {
		t.Fatalf("process %v: %v", p, e)
	}
	var agreed *benor.Val
	for p := core.ProcID(0); p < 5; p++ {
		raw := h.Exposed(p, benor.DecisionKey)
		v, ok := raw.(benor.Val)
		if !ok {
			t.Fatalf("process %v did not decide (got %v)", p, raw)
		}
		if agreed == nil {
			agreed = &v
		} else if *agreed != v {
			t.Fatalf("disagreement: %v vs %v", *agreed, v)
		}
	}
}

func TestHBORealtime(t *testing.T) {
	inputs := []benor.Val{benor.V1, benor.V0, benor.V1, benor.V0, benor.V1}
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Cycle(5), Seed: 8}},
		hbo.New(hbo.Config{Inputs: inputs, HaltAfterDecide: true}))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	errs := h.Wait().Errors
	for p, e := range errs {
		t.Fatalf("process %v: %v", p, e)
	}
	var agreed *benor.Val
	for p := core.ProcID(0); p < 5; p++ {
		v, ok := h.Exposed(p, hbo.DecisionKey).(benor.Val)
		if !ok {
			t.Fatalf("process %v did not decide", p)
		}
		if agreed == nil {
			agreed = &v
		} else if *agreed != v {
			t.Fatalf("disagreement: %v vs %v", *agreed, v)
		}
	}
}

func TestLeaderElectionRealtime(t *testing.T) {
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(4), Seed: 5}},
		leader.New(leader.Config{Notifier: SharedKind()}))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	defer h.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l, ok := commonLeader(h, 4); ok {
			// Require it to stay stable for a moment.
			time.Sleep(50 * time.Millisecond)
			if l2, ok2 := commonLeader(h, 4); ok2 && l2 == l {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no stable leader within 10s of wall clock")
}

// SharedKind avoids importing the leader constant twice in the test body.
func SharedKind() leader.NotifierKind { return leader.SharedMemoryNotifier }

func commonLeader(h *Host, n int) (core.ProcID, bool) {
	common := core.NoProc
	for p := core.ProcID(0); int(p) < n; p++ {
		l, ok := h.Exposed(p, leader.LeaderKey).(core.ProcID)
		if !ok {
			return core.NoProc, false
		}
		if common == core.NoProc {
			common = l
		} else if common != l {
			return core.NoProc, false
		}
	}
	return common, common != core.NoProc
}

func TestConsensusObjectsRealtime(t *testing.T) {
	// True concurrency hammering one racing object: agreement must hold.
	obj, err := regcons.NewRacing(core.Reg(0, "obj"), benor.Domain())
	if err != nil {
		t.Fatal(err)
	}
	alg := core.AlgorithmFunc(func(id core.ProcID) core.Process {
		return func(env core.Env) error {
			v, err := obj.Propose(env, benor.Val(int(env.ID())%2))
			if err != nil {
				return err
			}
			env.Expose("out", v)
			return nil
		}
	})
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(8), Seed: 2}}, alg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	errs := h.Wait().Errors
	for p, e := range errs {
		t.Fatalf("process %v: %v", p, e)
	}
	var agreed core.Value
	for p := core.ProcID(0); p < 8; p++ {
		v := h.Exposed(p, "out")
		if v == nil {
			t.Fatalf("process %v got no value", p)
		}
		if agreed == nil {
			agreed = v
		} else if agreed != v {
			t.Fatalf("disagreement: %v vs %v", agreed, v)
		}
	}
}

func BenchmarkRTRegisterWrite(b *testing.B) {
	done := make(chan error, 1)
	alg := core.AlgorithmFunc(func(id core.ProcID) core.Process {
		return func(env core.Env) error {
			var err error
			for i := 0; i < b.N; i++ {
				if err = env.Write(core.Reg(0, "hot"), i); err != nil {
					break
				}
			}
			done <- err
			return err
		}
	})
	h, err := New(Config{RunConfig: RunConfig{GSM: graph.Complete(1)}}, alg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	h.Start()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	h.Stop()
}
