package core

import "math/rand"

// Env is the interface between a process and the m&m system it runs in. It
// exposes both communication methods of the model — message passing and
// shared memory — plus step accounting and a deterministic source of local
// coin flips.
//
// Step granularity follows the model: each Send, Broadcast, Read, Write and
// Yield is one atomic step of the calling process. TryRecv and the
// inspection methods are local bookkeeping and take no step. In the
// simulator host exactly one process executes at a time and the scheduler
// (the adversary) chooses who steps next; in the real-time host steps run
// truly concurrently.
type Env interface {
	// ID returns this process's identifier.
	ID() ProcID
	// N returns the number of processes in the system.
	N() int
	// Procs returns all process identifiers, 0..n-1. Callers must not
	// modify the returned slice.
	Procs() []ProcID
	// Neighbors returns this process's neighbors in the shared-memory
	// graph G_SM (not including itself). Callers must not modify the
	// returned slice.
	Neighbors() []ProcID

	// Send sends payload to process "to" over the directed link id→to.
	// One step. Delivery obeys the link's type (reliable or fair lossy).
	Send(to ProcID, payload Value) error
	// Broadcast sends payload to every process, including the sender
	// itself. One step (a single "send to all" as in Ben-Or's algorithm).
	Broadcast(payload Value) error
	// TryRecv pops the next delivered message from this process's
	// mailbox, if any. Local operation: takes no step.
	TryRecv() (Message, bool)

	// Read atomically reads a shared register. One step. A register that
	// was never written reads as nil. Read fails with ErrAccessDenied if
	// this process is outside the register's shared-memory domain.
	Read(ref Ref) (Value, error)
	// Write atomically writes a shared register. One step. Write fails
	// with ErrAccessDenied outside the register's domain.
	Write(ref Ref, v Value) error
	// CompareAndSwap atomically replaces the contents of ref with
	// desired if they currently equal expected (nil means "never
	// written"). One step. It returns whether the swap happened and the
	// value observed.
	//
	// CAS models the atomic verbs of RDMA NICs and is an extension of
	// the paper's read/write register model: the register-only
	// algorithms (HBO over regcons.Racing, both leader elections) never
	// call it. It exists for the hardware-primitive ablations.
	CompareAndSwap(ref Ref, expected, desired Value) (swapped bool, current Value, err error)

	// Yield takes one local step that performs no communication. Local
	// timers in the sense of the paper (footnote 5: "a counter that is
	// decremented at each step of p") are driven by LocalSteps.
	Yield()
	// LocalSteps returns how many steps this process has taken so far.
	LocalSteps() uint64

	// Expose publishes a named observable output of this process — its
	// decision value, its current leader estimate — for run monitors and
	// stop conditions. Observation is external to the model: exposing
	// takes no step and other processes cannot read exposed values.
	Expose(name string, v Value)

	// Rand returns this process's private deterministic randomness
	// source, seeded from the run seed and the process id. Algorithms use
	// it for local coin flips (e.g. Ben-Or's "v ← 0 or 1 randomly").
	Rand() *rand.Rand

	// Logf records a formatted debug event in the run trace, if tracing
	// is enabled. No step.
	Logf(format string, args ...any)
}

// WaitUntil repeatedly yields until cond holds. Each poll costs one step, so
// a waiting process stays schedulable (and accusable, timeable, crashable)
// rather than blocking the host.
func WaitUntil(env Env, cond func() bool) {
	for !cond() {
		env.Yield()
	}
}

// Inbox is a small helper that drains an Env mailbox and buffers messages
// for later, keyed inspection. Round-based algorithms (Ben-Or, HBO) receive
// messages for future rounds ahead of time; Inbox lets them keep those
// without re-implementing buffering in each algorithm.
type Inbox struct {
	buf []Message
}

// DrainFrom moves every currently delivered message from env's mailbox into
// the inbox. Local operation, no step.
func (in *Inbox) DrainFrom(env Env) {
	for {
		m, ok := env.TryRecv()
		if !ok {
			return
		}
		in.buf = append(in.buf, m)
	}
}

// Len returns the number of buffered messages.
func (in *Inbox) Len() int { return len(in.buf) }

// Match returns the buffered messages for which pred holds, without
// removing them.
func (in *Inbox) Match(pred func(Message) bool) []Message {
	var out []Message
	for _, m := range in.buf {
		if pred(m) {
			out = append(out, m)
		}
	}
	return out
}

// Take removes and returns the buffered messages for which pred holds.
func (in *Inbox) Take(pred func(Message) bool) []Message {
	var out []Message
	rest := in.buf[:0]
	for _, m := range in.buf {
		if pred(m) {
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	in.buf = rest
	return out
}

// Drop discards every buffered message for which pred holds and reports how
// many were dropped.
func (in *Inbox) Drop(pred func(Message) bool) int {
	n := 0
	rest := in.buf[:0]
	for _, m := range in.buf {
		if pred(m) {
			n++
		} else {
			rest = append(rest, m)
		}
	}
	in.buf = rest
	return n
}
