package core

import "fmt"

// Ref names one shared atomic register.
//
// Every register is physically placed at its Owner's host, mirroring the
// locality model of §5.3 of the paper: the owner accesses the register
// locally, other processes access it remotely over their shared-memory
// connection to the owner. In the uniform m&m model a register owned by p
// may be accessed exactly by {p} ∪ neighbors(p) in the shared-memory graph.
//
// Name distinguishes register families (for example "STATE", "RVals"), and
// I, J index within a family (round numbers, matrix coordinates). The zero
// values of I and J are valid indices.
type Ref struct {
	// Owner is the process at whose host the register physically resides.
	Owner ProcID
	// Name is the register family, e.g. "STATE" or "RVals".
	Name string
	// I is the first index within the family (e.g. a round number).
	I int
	// J is the second index within the family (e.g. a matrix column).
	J int
}

// Reg is shorthand for a register with zero indices.
func Reg(owner ProcID, name string) Ref {
	return Ref{Owner: owner, Name: name}
}

// RegI is shorthand for a register with one index.
func RegI(owner ProcID, name string, i int) Ref {
	return Ref{Owner: owner, Name: name, I: i}
}

// RegIJ is shorthand for a register with two indices.
func RegIJ(owner ProcID, name string, i, j int) Ref {
	return Ref{Owner: owner, Name: name, I: i, J: j}
}

// Sub derives a register reference for a sub-register of r: same owner,
// suffixed family name, and the given indices. Composite shared objects
// (such as the wait-free consensus objects of internal/regcons) use Sub to
// carve their internal registers out of the object's own reference without
// colliding with other families.
func (r Ref) Sub(suffix string, i, j int) Ref {
	return Ref{
		Owner: r.Owner,
		Name:  r.Name + "/" + suffix,
		I:     mixIndex(r.I, i),
		J:     mixIndex(r.J, j),
	}
}

// mixIndex folds a sub-index into a parent index, keeping distinct
// (parent, child) pairs distinct for the small non-negative indices used
// throughout the library.
func mixIndex(parent, child int) int {
	const stride = 1 << 20
	return parent*stride + child
}

// String implements fmt.Stringer.
func (r Ref) String() string {
	return fmt.Sprintf("%s[%s][%d][%d]", r.Name, r.Owner, r.I, r.J)
}
