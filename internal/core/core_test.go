package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProcIDString(t *testing.T) {
	if got := ProcID(3).String(); got != "p3" {
		t.Errorf("String = %q", got)
	}
	if got := NoProc.String(); got != "⊥" {
		t.Errorf("NoProc String = %q", got)
	}
}

func TestRefConstructorsAndString(t *testing.T) {
	r := RegIJ(2, "RVals", 3, 4)
	if r.Owner != 2 || r.Name != "RVals" || r.I != 3 || r.J != 4 {
		t.Errorf("RegIJ = %+v", r)
	}
	if Reg(1, "X") != (Ref{Owner: 1, Name: "X"}) {
		t.Error("Reg wrong")
	}
	if RegI(1, "X", 9) != (Ref{Owner: 1, Name: "X", I: 9}) {
		t.Error("RegI wrong")
	}
	if got := Reg(1, "X").String(); got != "X[p1][0][0]" {
		t.Errorf("String = %q", got)
	}
}

// TestQuickSubInjective property-checks that Sub is injective over the
// index ranges the library uses (rounds and participant indices far below
// the mixing stride).
func TestQuickSubInjective(t *testing.T) {
	f := func(a1, b1, a2, b2 uint16, c1, c2 uint8) bool {
		base1 := RegIJ(0, "o", int(a1), int(b1))
		base2 := RegIJ(0, "o", int(a2), int(b2))
		s1 := base1.Sub("x", int(c1), 0)
		s2 := base2.Sub("x", int(c2), 0)
		same := a1 == a2 && b1 == b2 && c1 == c2
		return (s1 == s2) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmFunc(t *testing.T) {
	called := map[ProcID]bool{}
	alg := AlgorithmFunc(func(id ProcID) Process {
		called[id] = true
		return func(Env) error { return nil }
	})
	for p := ProcID(0); p < 3; p++ {
		if alg.ProcessFor(p) == nil {
			t.Fatalf("nil process for %v", p)
		}
	}
	if len(called) != 3 {
		t.Errorf("ProcessFor called for %d ids", len(called))
	}
}

// fakeRecvEnv provides just enough Env for Inbox tests.
type fakeRecvEnv struct {
	Env
	queue []Message
}

func (f *fakeRecvEnv) TryRecv() (Message, bool) {
	if len(f.queue) == 0 {
		return Message{}, false
	}
	m := f.queue[0]
	f.queue = f.queue[1:]
	return m, true
}

func TestInboxDrainMatchTakeDrop(t *testing.T) {
	env := &fakeRecvEnv{queue: []Message{
		{From: 0, Payload: "a"},
		{From: 1, Payload: "b"},
		{From: 2, Payload: "a"},
	}}
	var in Inbox
	in.DrainFrom(env)
	if in.Len() != 3 {
		t.Fatalf("Len = %d", in.Len())
	}

	matched := in.Match(func(m Message) bool { return m.Payload == "a" })
	if len(matched) != 2 || in.Len() != 3 {
		t.Errorf("Match disturbed the inbox: %d matched, %d left", len(matched), in.Len())
	}

	taken := in.Take(func(m Message) bool { return m.From == 1 })
	if len(taken) != 1 || taken[0].Payload != "b" {
		t.Errorf("Take = %v", taken)
	}
	if in.Len() != 2 {
		t.Errorf("Len after Take = %d", in.Len())
	}

	dropped := in.Drop(func(m Message) bool { return m.Payload == "a" })
	if dropped != 2 || in.Len() != 0 {
		t.Errorf("Drop = %d, Len = %d", dropped, in.Len())
	}
}

func TestInboxPreservesOrder(t *testing.T) {
	env := &fakeRecvEnv{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		env.queue = append(env.queue, Message{From: ProcID(rng.Intn(4)), Payload: i})
	}
	var in Inbox
	in.DrainFrom(env)
	all := in.Take(func(Message) bool { return true })
	for i, m := range all {
		if m.Payload != i {
			t.Fatalf("order broken at %d: %v", i, m.Payload)
		}
	}
}
