package core

import "errors"

var (
	// ErrAccessDenied reports a shared-memory access by a process outside
	// the register's shared-memory domain. In the uniform model, a
	// register owned by p is accessible only by {p} ∪ neighbors(p) in
	// G_SM; the substrate enforces this, matching the hardware limits on
	// memory sharing the paper models (§3).
	ErrAccessDenied = errors.New("mnm: shared-memory access outside register domain")

	// ErrUnknownProc reports a message addressed to a process id outside
	// Π = {0, ..., n-1}.
	ErrUnknownProc = errors.New("mnm: unknown process id")

	// ErrCrashed reports an operation attempted by (or an interaction
	// with) a crashed process.
	ErrCrashed = errors.New("mnm: process has crashed")

	// ErrMemoryFailed reports an access to a register hosted at a failed
	// memory (the non-RDMA ablation: memory that dies with its process).
	// The paper assumes shared memory does NOT fail; this error exists to
	// demonstrate that the assumption is load-bearing (see §6, "failures
	// of the shared memory").
	ErrMemoryFailed = errors.New("mnm: register's host memory has failed")

	// ErrStopped reports that the run was stopped (budget exhausted or
	// stop condition met) while the operation was in flight.
	ErrStopped = errors.New("mnm: run stopped")
)
