// Package core defines the message-and-memory (m&m) distributed computing
// model of Aguilera et al., "Passing Messages while Sharing Memory"
// (PODC 2018).
//
// In the m&m model a system consists of n processes Π = {0, ..., n-1} that
// can communicate both by passing messages over directed links and by
// reading and writing shared atomic registers. Which processes may share a
// given register is constrained by a shared-memory domain, which in the
// uniform model is induced by an undirected shared-memory graph G_SM: a
// register placed at process p may be accessed by p and p's neighbors in
// G_SM.
//
// This package holds the model-level vocabulary — process identifiers,
// register references, messages — and the Env interface through which an
// algorithm takes steps. Concrete hosts for Env live in internal/sim (a
// deterministic, adversary-scheduled step simulator) and internal/rt (a
// goroutine-per-process real-time runtime).
package core

import "fmt"

// ProcID identifies a process. Processes are numbered 0..n-1 as in the
// paper's Π = {0, ..., n-1}.
type ProcID int

// NoProc is a sentinel meaning "no process". It is used, for example, as the
// initial leader output before a process has any contender information.
const NoProc ProcID = -1

// String implements fmt.Stringer.
func (p ProcID) String() string {
	if p == NoProc {
		return "⊥"
	}
	return fmt.Sprintf("p%d", int(p))
}

// Value is the contents of a shared register or a message payload. Values
// must be treated as immutable once written or sent: hosts hand the same
// Value to several processes without copying. Use small value types
// (ints, bools, short structs, arrays) rather than pointers to mutable data.
type Value = any

// SpanContext is the causal identity a message or RPC carries across a
// hop: which trace it belongs to, which span emitted it, and the sender's
// Lamport clock at the emit event. It lives in core — not internal/trace —
// because it is model-level vocabulary: every transport backend must carry
// it verbatim (wire v4 reserves header bytes for it) so a cross-node run
// can be reassembled into one causally ordered timeline afterwards.
//
// The zero SpanContext means "untraced": TraceID 0 is never assigned by a
// recorder, and a zero Clock never advances a receiver's Lamport clock.
type SpanContext struct {
	// TraceID identifies the end-to-end trace (one user-visible operation
	// and everything it causes). 0 = untraced.
	TraceID uint64
	// SpanID identifies the span that emitted this message; the receiver
	// records it as the parent of whatever span the delivery starts.
	SpanID uint64
	// Clock is the sender's Lamport clock at the emit event. Receivers
	// merge it (clock = max(local, Clock) + 1) so cross-node order is
	// reconstructible without synchronized wall clocks.
	Clock uint64
}

// Traced reports whether the context identifies a sampled trace.
func (sc SpanContext) Traced() bool { return sc.TraceID != 0 }

// Message is a message delivered to a process. From records the sender, as
// required by the Integrity link axiom ("if q receives m from p ...").
type Message struct {
	// From is the sender of the message.
	From ProcID
	// Payload is the message body. Like register Values, payloads are
	// immutable once sent.
	Payload Value
	// Span is the trace context the message carried, zero when the send
	// was untraced. Backends propagate it; they never interpret it.
	Span SpanContext
}

// Process is an algorithm run by one process: straight-line code that
// communicates only through the supplied Env. Returning nil means the
// process halted voluntarily (for example, after deciding); returning an
// error records a process-level fault in the run result. A process that
// never returns is stopped by its host when the run ends.
type Process func(env Env) error

// Algorithm instantiates a Process for each process identifier. It is the
// unit the hosts (sim, rt) deploy across a system.
type Algorithm interface {
	// ProcessFor returns the code for process id.
	ProcessFor(id ProcID) Process
}

// AlgorithmFunc adapts a plain function to the Algorithm interface.
type AlgorithmFunc func(id ProcID) Process

// ProcessFor implements Algorithm.
func (f AlgorithmFunc) ProcessFor(id ProcID) Process { return f(id) }
