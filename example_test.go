package mnm_test

import (
	"fmt"

	"github.com/mnm-model/mnm"
)

// ExampleSolveConsensus runs HBO on a complete shared-memory graph: with
// unanimous inputs the decision is the common value, regardless of seed.
func ExampleSolveConsensus() {
	gsm := mnm.CompleteGraph(5)
	inputs := []mnm.ConsensusValue{mnm.V1, mnm.V1, mnm.V1, mnm.V1, mnm.V1}

	v, err := mnm.SolveConsensus(gsm, inputs, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("decided:", v)
	// Output: decided: 1
}

// ExampleSolveConsensus_beyondMinority shows the paper's headline: on a
// complete G_SM, consensus decides even after a majority of processes
// crashed — impossible with message passing alone.
func ExampleSolveConsensus_beyondMinority() {
	gsm := mnm.CompleteGraph(7)
	inputs := []mnm.ConsensusValue{
		mnm.V0, mnm.V0, mnm.V0, mnm.V0, mnm.V0, mnm.V0, mnm.V0,
	}
	crashes := []mnm.Crash{{Proc: 0}, {Proc: 1}, {Proc: 2}, {Proc: 3}, {Proc: 4}}

	v, err := mnm.SolveConsensus(gsm, inputs, 42, crashes...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("decided %v with 5 of 7 processes crashed\n", v)
	// Output: decided 0 with 5 of 7 processes crashed
}

// ExampleElectLeader elects an eventual leader (Ω) assuming only that one
// process — here p2 — is timely; everyone else and every link may be
// arbitrarily asynchronous.
func ExampleElectLeader() {
	leader, err := mnm.ElectLeader(4, mnm.MessageNotifier, 2, 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("stable leader:", leader)
	// Output: stable leader: p0
}

// ExampleFaultToleranceBound evaluates Theorem 4.3 for the Petersen graph:
// with exact vertex expansion h = 4/5, HBO tolerates up to 7 of 10 crashes.
func ExampleFaultToleranceBound() {
	g := mnm.PetersenGraph()
	h, _, err := g.ExactExpansion()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("h(G) = %v, tolerated crashes: %d of %d\n",
		h, mnm.FaultToleranceBound(g.N(), h), g.N())
	// Output: h(G) = 4/5, tolerated crashes: 7 of 10
}

// ExampleAlgorithmFunc writes a custom m&m algorithm against the public
// Env: each process stores a value in shared memory and reads its
// neighbor's.
func ExampleAlgorithmFunc() {
	alg := mnm.AlgorithmFunc(func(id mnm.ProcID) mnm.Process {
		return func(env mnm.Env) error {
			// Publish my id in my own register.
			if err := env.Write(mnm.Ref{Owner: env.ID(), Name: "val"}, int(env.ID())); err != nil {
				return err
			}
			// Wait until the next process (mod n) has published, then
			// read it — mixing polling steps with shared-memory reads.
			next := mnm.ProcID((int(env.ID()) + 1) % env.N())
			for {
				v, err := env.Read(mnm.Ref{Owner: next, Name: "val"})
				if err != nil {
					return err
				}
				if v != nil {
					env.Expose("saw", v)
					return nil
				}
			}
		}
	})
	r, err := mnm.NewSim(mnm.SimConfig{RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(3)}}, alg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := r.Run(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("p0 saw:", r.Exposed(0, "saw"))
	// Output: p0 saw: 1
}
