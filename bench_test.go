// Package-level benchmarks: one benchmark per paper artifact (figure /
// theorem / comparison), so `go test -bench=.` regenerates the performance
// shape of every experiment, plus component micro-benchmarks.
//
// Absolute numbers are host-specific; the claims being checked are the
// *shapes*: HBO survives crash counts Ben-Or cannot, the steady-state cost
// of leader election is O(1) register ops per interval with zero messages,
// and the m&m lock removes the spin.
package mnm_test

import (
	"testing"

	"github.com/mnm-model/mnm"
)

func consensusInputs(n int) []mnm.ConsensusValue {
	inputs := make([]mnm.ConsensusValue, n)
	for i := range inputs {
		inputs[i] = mnm.ConsensusValue(i % 2)
	}
	return inputs
}

// BenchmarkF2_HBODecide benchmarks HBO decision latency (steps are
// simulated; the measured quantity is wall time per full decided run).
func BenchmarkF2_HBODecide(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *mnm.Graph
	}{
		{"Complete5", mnm.CompleteGraph(5)},
		{"Cycle6", mnm.CycleGraph(6)},
		{"Petersen", mnm.PetersenGraph()},
		{"Hypercube4_n16", mnm.HypercubeGraph(4)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			inputs := consensusInputs(tc.g.N())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mnm.SolveConsensus(tc.g, inputs, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT43_HBOAtWorstCrash benchmarks HBO at its exact graph
// tolerance under the worst-case crash set (Theorem 4.3's regime).
func BenchmarkT43_HBOAtWorstCrash(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *mnm.Graph
	}{
		{"Petersen", mnm.PetersenGraph()},
		{"Complete7", mnm.CompleteGraph(7)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			tol, err := tc.g.ExactHBOTolerance()
			if err != nil {
				b.Fatal(err)
			}
			rng := testRand(1)
			crashSet, _ := tc.g.GreedyWorstCrashSet(tol, rng, 30)
			var crashes []mnm.Crash
			for _, v := range crashSet.Members() {
				crashes = append(crashes, mnm.Crash{Proc: mnm.ProcID(v)})
			}
			inputs := consensusInputs(tc.g.N())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mnm.SolveConsensus(tc.g, inputs, int64(i), crashes...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBO_BenOrDecide benchmarks the pure message-passing baseline.
func BenchmarkBO_BenOrDecide(b *testing.B) {
	const n = 7
	inputs := consensusInputs(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := mnm.NewSim(mnm.SimConfig{
			RunConfig: mnm.RunConfig{GSM: mnm.EdgelessGraph(n), Seed: int64(i)},
			MaxSteps:  5_000_000,
			StopWhen:  mnm.AllDecided(mnm.BenOrDecisionKey),
		}, mnm.NewBenOr(mnm.BenOrConfig{F: 3, Inputs: inputs}))
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run()
		if err != nil || !res.Stopped {
			b.Fatalf("err=%v stopped=%v", err, res.Stopped)
		}
	}
}

// BenchmarkLE1_Stabilize benchmarks leader election to stability with
// reliable links (Figures 3+4).
func BenchmarkLE1_Stabilize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mnm.ElectLeader(5, mnm.MessageNotifier, 1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLE2_StabilizeFairLossy benchmarks leader election to stability
// over fair-lossy links with 30% drops (Figures 3+5).
func BenchmarkLE2_StabilizeFairLossy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := mnm.NewSim(mnm.SimConfig{
			RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(5), Seed: int64(i), Links: mnm.FairLossy, Drop: mnm.NewRandomDrop(0.3, int64(i)+1)},
			Scheduler: mnm.TimelyScheduler(1, 4, int64(i)+2),
			MaxSteps:  20_000_000,
			StopWhen:  mnm.StableLeaderCondition(3_000),
		}, mnm.NewLeaderElection(mnm.LeaderConfig{Notifier: mnm.SharedMemoryNotifier}))
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run()
		if err != nil || !res.Stopped {
			b.Fatalf("err=%v stopped=%v", err, res.Stopped)
		}
	}
}

// BenchmarkMUTEX_Locks benchmarks a contended acquire/release cycle for
// the two locks of the §1 example.
func BenchmarkMUTEX_Locks(b *testing.B) {
	b.Run("MnM", func(b *testing.B) {
		lock := mnm.NewMnMLock(0, "bench")
		benchLockWorkload(b, func(env mnm.Env, in *mnm.Inbox) error {
			tk, err := lock.Acquire(env, in)
			if err != nil {
				return err
			}
			return lock.Release(env, tk)
		})
	})
	b.Run("Spin", func(b *testing.B) {
		lock := mnm.NewSpinLock(0, "bench")
		benchLockWorkload(b, func(env mnm.Env, _ *mnm.Inbox) error {
			tk, err := lock.Acquire(env)
			if err != nil {
				return err
			}
			return lock.Release(env, tk)
		})
	})
}

func benchLockWorkload(b *testing.B, cycle func(mnm.Env, *mnm.Inbox) error) {
	b.Helper()
	alg := mnm.AlgorithmFunc(func(id mnm.ProcID) mnm.Process {
		return func(env mnm.Env) error {
			var in mnm.Inbox
			if env.ID() != 0 {
				// One contending process keeps the lock busy for a
				// bounded number of cycles.
				for i := 0; i < 100; i++ {
					if err := cycle(env, &in); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < b.N; i++ {
				if err := cycle(env, &in); err != nil {
					return err
				}
			}
			return nil
		}
	})
	r, err := mnm.NewSim(mnm.SimConfig{
		RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(2), Seed: 1},
		MaxSteps:  ^uint64(0),
	}, alg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := r.Run()
	if err != nil || len(res.Errors) > 0 {
		b.Fatalf("err=%v procErrs=%v", err, res.Errors)
	}
}

// BenchmarkRSM_Replicate benchmarks end-to-end replication of 8 commands
// across 4 replicas.
func BenchmarkRSM_Replicate(b *testing.B) {
	const n, commands = 4, 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := mnm.NewSim(mnm.SimConfig{
			RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(n), Seed: int64(i)},
			MaxSteps:  20_000_000,
			StopWhen: func(r *mnm.SimRunner) bool {
				for p := 0; p < n; p++ {
					if r.Exposed(mnm.ProcID(p), mnm.RSMDoneKey) != true {
						return false
					}
				}
				return true
			},
		}, mnm.NewReplicatedLog(mnm.RSMConfig{CommandsPerProcess: commands}))
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run()
		if err != nil || !res.Stopped {
			b.Fatalf("err=%v stopped=%v", err, res.Stopped)
		}
	}
}

// BenchmarkGraph_Expansion benchmarks the exact expansion enumerator that
// the Theorem 4.3 tables depend on.
func BenchmarkGraph_Expansion(b *testing.B) {
	g := mnm.HypercubeGraph(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.ExactExpansion(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsensusObjects benchmarks the two consensus-object
// implementations HBO can run on (register racing vs. RDMA-style CAS).
func BenchmarkConsensusObjects(b *testing.B) {
	run := func(b *testing.B, mk func(i int) mnm.ConsensusObject) {
		b.Helper()
		alg := mnm.AlgorithmFunc(func(id mnm.ProcID) mnm.Process {
			return func(env mnm.Env) error {
				for i := 0; i < b.N; i++ {
					if _, err := mk(i).Propose(env, mnm.V1); err != nil {
						return err
					}
				}
				return nil
			}
		})
		r, err := mnm.NewSim(mnm.SimConfig{RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(1)}, MaxSteps: ^uint64(0)}, alg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		res, err := r.Run()
		if err != nil || len(res.Errors) > 0 {
			b.Fatalf("err=%v procErrs=%v", err, res.Errors)
		}
	}
	domain := []mnm.Value{mnm.V0, mnm.V1, mnm.Unknown}
	b.Run("RegisterRacing", func(b *testing.B) {
		run(b, func(i int) mnm.ConsensusObject {
			obj, err := mnm.NewRacingConsensus(mnm.Ref{Owner: 0, Name: "o", I: i}, domain)
			if err != nil {
				b.Fatal(err)
			}
			return obj
		})
	})
	b.Run("CAS", func(b *testing.B) {
		run(b, func(i int) mnm.ConsensusObject {
			return mnm.NewCASConsensus(mnm.Ref{Owner: 0, Name: "o", I: i})
		})
	})
}
