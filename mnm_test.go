package mnm_test

import (
	"math/rand"
	"testing"

	"github.com/mnm-model/mnm"
)

func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestSolveConsensusQuickstart(t *testing.T) {
	g := mnm.CompleteGraph(5)
	inputs := []mnm.ConsensusValue{mnm.V1, mnm.V1, mnm.V1, mnm.V1, mnm.V1}
	v, err := mnm.SolveConsensus(g, inputs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != mnm.V1 {
		t.Errorf("unanimous run decided %v", v)
	}
}

func TestSolveConsensusBeyondMinority(t *testing.T) {
	g := mnm.CompleteGraph(7)
	inputs := make([]mnm.ConsensusValue, 7)
	for i := range inputs {
		inputs[i] = mnm.ConsensusValue(i % 2)
	}
	crashes := []mnm.Crash{{Proc: 0}, {Proc: 1}, {Proc: 2}, {Proc: 3}, {Proc: 4}}
	v, err := mnm.SolveConsensus(g, inputs, 3, crashes...)
	if err != nil {
		t.Fatal(err)
	}
	if v != mnm.V0 && v != mnm.V1 {
		t.Errorf("decided %v", v)
	}
}

func TestSolveConsensusReportsStall(t *testing.T) {
	// Edgeless graph with a crashed majority cannot decide; the helper
	// must report the stall rather than hang (bounded budget) or lie.
	g := mnm.EdgelessGraph(5)
	inputs := make([]mnm.ConsensusValue, 5)
	crashes := []mnm.Crash{{Proc: 0}, {Proc: 1}, {Proc: 2}}
	r, err := mnm.NewSim(mnm.SimConfig{
		RunConfig: mnm.RunConfig{GSM: g, Seed: 1},
		Crashes:   crashes,
		MaxSteps:  50_000,
		StopWhen:  mnm.AllDecided(mnm.HBODecisionKey),
	}, mnm.NewHBO(mnm.HBOConfig{Inputs: inputs}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped {
		t.Error("decided without a represented majority")
	}
}

func TestElectLeaderBothNotifiers(t *testing.T) {
	for _, kind := range []mnm.NotifierKind{mnm.MessageNotifier, mnm.SharedMemoryNotifier} {
		l, err := mnm.ElectLeader(4, kind, 2, 5)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if l == mnm.NoProc {
			t.Fatalf("%v: no leader", kind)
		}
	}
}

func TestFaultToleranceBoundFacade(t *testing.T) {
	h, _, err := mnm.PetersenGraph().ExactExpansion()
	if err != nil {
		t.Fatal(err)
	}
	if got := mnm.FaultToleranceBound(10, h); got != 7 {
		t.Errorf("Petersen bound = %d, want 7", got)
	}
}

func TestGraphConstructorsExposed(t *testing.T) {
	if mnm.Figure1Graph().N() != 5 {
		t.Error("Figure1Graph wrong size")
	}
	if mnm.MargulisGraph(4).N() != 16 {
		t.Error("MargulisGraph wrong size")
	}
	g, err := mnm.RandomRegularGraph(10, 3, testRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if reg, d := g.IsRegular(); !reg || d != 3 {
		t.Error("RandomRegularGraph not 3-regular")
	}
}

func TestCustomAlgorithmThroughFacade(t *testing.T) {
	// Users can write their own m&m algorithms against the public Env.
	alg := mnm.AlgorithmFunc(func(id mnm.ProcID) mnm.Process {
		return func(env mnm.Env) error {
			if err := env.Write(mnm.Ref{Owner: env.ID(), Name: "x"}, int(env.ID())); err != nil {
				return err
			}
			if err := env.Broadcast("hi"); err != nil {
				return err
			}
			env.Expose("ok", true)
			return nil
		}
	})
	r, err := mnm.NewSim(mnm.SimConfig{RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(3)}}, alg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Halted) != 3 || len(res.Errors) != 0 {
		t.Fatalf("halted=%v errors=%v", res.Halted, res.Errors)
	}
	for p := mnm.ProcID(0); p < 3; p++ {
		if r.Exposed(p, "ok") != true {
			t.Errorf("process %v not ok", p)
		}
	}
}

func TestRTHostThroughFacade(t *testing.T) {
	inputs := []mnm.ConsensusValue{mnm.V0, mnm.V1, mnm.V0}
	h, err := mnm.NewRT(mnm.RTConfig{RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(3), Seed: 2}},
		mnm.NewHBO(mnm.HBOConfig{Inputs: inputs, HaltAfterDecide: true}))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	errs := h.Wait().Errors
	for p, e := range errs {
		t.Fatalf("process %v: %v", p, e)
	}
	var agreed *mnm.ConsensusValue
	for p := mnm.ProcID(0); p < 3; p++ {
		v, ok := h.Exposed(p, mnm.HBODecisionKey).(mnm.ConsensusValue)
		if !ok {
			t.Fatalf("process %v undecided", p)
		}
		if agreed == nil {
			agreed = &v
		} else if *agreed != v {
			t.Fatalf("disagreement %v vs %v", *agreed, v)
		}
	}
}
