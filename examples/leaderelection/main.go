// Leader election example: elect a leader, crash it, watch the failover —
// and verify the paper's steady-state claim (Theorem 5.1): after
// stabilization, no messages at all; the leader writes one register, the
// others read it.
package main

import (
	"fmt"
	"os"

	"github.com/mnm-model/mnm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "leaderelection: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n        = 5
		crashAt  = 120_000
		maxSteps = 400_000
		window   = 40_000
	)
	counters := mnm.NewCounters(n)
	r, err := mnm.NewSim(mnm.SimConfig{
		RunConfig:     mnm.RunConfig{GSM: mnm.CompleteGraph(n), Seed: 3, Counters: counters},
		Scheduler:     mnm.TimelyScheduler(1, 4, 9),
		MaxSteps:      maxSteps,
		SnapshotEvery: window,
		Crashes:       []mnm.Crash{{Proc: 0, AtStep: crashAt}},
	}, mnm.NewLeaderElection(mnm.LeaderConfig{Notifier: mnm.MessageNotifier}))
	if err != nil {
		return err
	}
	res, err := r.Run()
	if err != nil {
		return err
	}
	for p, e := range res.Errors {
		return fmt.Errorf("process %v: %w", p, e)
	}

	fmt.Println("communication per 40k-step window (process 0 crashes at 120k):")
	fmt.Println("window          msgs   reg writes   reg reads")
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Step == res.Series[i-1].Step {
			continue
		}
		d := res.Series[i].Sub(res.Series[i-1])
		fmt.Printf("%6d–%-7d %6d %10d %11d\n",
			res.Series[i-1].Step, res.Series[i].Step,
			d.Total(mnm.MsgSent),
			d.Total(mnm.RegWriteLocal)+d.Total(mnm.RegWriteRemote),
			d.Total(mnm.RegReadLocal)+d.Total(mnm.RegReadRemote))
	}

	fmt.Println("\nfinal leader outputs:")
	for p := mnm.ProcID(0); int(p) < n; p++ {
		if r.Crashed(p) {
			fmt.Printf("  %v: crashed\n", p)
			continue
		}
		fmt.Printf("  %v: leader = %v\n", p, r.Exposed(p, mnm.LeaderKey))
	}
	fmt.Println("\nmessages burst only at startup and around the crash; in steady state")
	fmt.Println("the only traffic is the leader's heartbeat write and the others' reads.")
	return nil
}
