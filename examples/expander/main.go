// Expander example: how the shared-memory graph's vertex expansion sets
// HBO's fault tolerance (Theorem 4.3), end to end — compute h(G) exactly,
// evaluate the analytic bound, find a worst-case crash set, and run HBO at
// that crash count.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/mnm-model/mnm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "expander: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	randReg, err := mnm.RandomConnectedRegularGraph(12, 4, rng)
	if err != nil {
		return err
	}
	systems := []struct {
		name string
		g    *mnm.Graph
	}{
		{"Edgeless(9)  (pure message passing)", mnm.EdgelessGraph(9)},
		{"Cycle(10)    (degree 2, poor expansion)", mnm.CycleGraph(10)},
		{"Petersen     (degree 3 expander)", mnm.PetersenGraph()},
		{"RandReg(12,4)(degree 4 random expander)", randReg},
		{"Complete(10) (pure shared memory)", mnm.CompleteGraph(10)},
	}

	fmt.Println("graph                                    h(G)   T4.3 bound  exact tol  HBO@tol")
	for _, s := range systems {
		n := s.g.N()
		h, _, err := s.g.ExactExpansion()
		if err != nil {
			return err
		}
		bound := mnm.FaultToleranceBound(n, h)
		tol, err := s.g.ExactHBOTolerance()
		if err != nil {
			return err
		}

		// Run HBO against the worst-case crash set of size tol.
		crashSet, _ := s.g.GreedyWorstCrashSet(tol, rng, 30)
		var crashes []mnm.Crash
		for _, v := range crashSet.Members() {
			crashes = append(crashes, mnm.Crash{Proc: mnm.ProcID(v)})
		}
		inputs := make([]mnm.ConsensusValue, n)
		for i := range inputs {
			inputs[i] = mnm.ConsensusValue(i % 2)
		}
		outcome := "decided"
		if _, err := mnm.SolveConsensus(s.g, inputs, 3, crashes...); err != nil {
			outcome = "stalled"
		}
		fmt.Printf("%-40s %-6v %-11d %-10d %s\n", s.name, h, bound, tol, outcome)
	}
	fmt.Println("\nhigher expansion → more tolerated crashes, at bounded degree;")
	fmt.Println("the exact tolerance always dominates the analytic Theorem 4.3 bound.")
	return nil
}
