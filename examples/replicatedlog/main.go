// Replicated log example: the downstream system the paper's primitives
// serve. An Ω leader (Figure 3) sequences client commands into a shared
// log whose slots are CAS registers striped across the hosts — the
// RDMA-shared-log design of systems like DARE, APUS and Mu — and every
// replica applies the same prefix.
//
// The run crashes the initial leader mid-way; the others elect a new
// sequencer and finish replication.
package main

import (
	"fmt"
	"os"

	"github.com/mnm-model/mnm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "replicatedlog: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n        = 4
		commands = 3
	)
	total := n * commands
	r, err := mnm.NewSim(mnm.SimConfig{
		RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(n), Seed: 7},
		Scheduler: mnm.RandomScheduler(9),
		MaxSteps:  8_000_000,
		Crashes:   []mnm.Crash{{Proc: 0, AtStep: 500}},
		StopWhen: func(r *mnm.SimRunner) bool {
			for p := 0; p < n; p++ {
				id := mnm.ProcID(p)
				if r.Crashed(id) {
					continue
				}
				applied, _ := r.Exposed(id, mnm.RSMAppliedKey).(int)
				if r.Exposed(id, mnm.RSMDoneKey) != true || applied < total-commands {
					return false
				}
			}
			return true
		},
	}, mnm.NewReplicatedLog(mnm.RSMConfig{CommandsPerProcess: commands}))
	if err != nil {
		return err
	}
	res, err := r.Run()
	if err != nil {
		return err
	}
	for p, e := range res.Errors {
		return fmt.Errorf("replica %v: %w", p, e)
	}
	if !res.Stopped {
		return fmt.Errorf("replication did not converge in %d steps", res.Steps)
	}

	fmt.Printf("replication finished in %d steps (leader p0 crashed at step 500)\n\n", res.Steps)
	fmt.Println("replica state:")
	for p := mnm.ProcID(0); int(p) < n; p++ {
		if r.Crashed(p) {
			fmt.Printf("  %v: crashed\n", p)
			continue
		}
		fmt.Printf("  %v: applied=%v state-hash=%x\n",
			p, r.Exposed(p, mnm.RSMAppliedKey), r.Exposed(p, mnm.RSMHashKey))
	}

	fmt.Println("\ncommitted log prefix (slot registers survive the crash):")
	applied := 0
	for p := mnm.ProcID(0); int(p) < n; p++ {
		if a, ok := r.Exposed(p, mnm.RSMAppliedKey).(int); ok && a > applied {
			applied = a
		}
	}
	for s := 0; s < applied; s++ {
		v, ok := r.Memory().Peek(mnm.RSMSlotRef(s, n))
		if !ok {
			break
		}
		fmt.Printf("  slot %2d @ host %v: %v\n", s, mnm.RSMSlotRef(s, n).Owner, v)
	}
	fmt.Println("\nall live replicas report identical state hashes: the log is agreed.")
	return nil
}
