// Lossy-consensus example: the full §5 stack in action. Ω with the
// Figure-5 shared-register notifier needs no reliable links, and
// shared-memory Paxos on top of it keeps all consensus state in registers
// — so the system decides even when the network drops 70% of all
// messages, and in the steady state it sends none at all.
package main

import (
	"fmt"
	"os"

	"github.com/mnm-model/mnm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lossyconsensus: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 5
	inputs := []mnm.Value{"ship-v1", "ship-v2", "rollback", "ship-v1", "hold"}
	counters := mnm.NewCounters(n)

	r, err := mnm.NewSim(mnm.SimConfig{
		RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(n), Seed: 11, Links: mnm.FairLossy, Drop: mnm.NewRandomDrop(0.7, 5), Counters: counters},
		// 70% of messages vanish
		Scheduler: mnm.TimelyScheduler(2, 4, 6),
		MaxSteps:  10_000_000,
		StopWhen:  mnm.AllDecided(mnm.PaxosDecisionKey),
	}, mnm.NewPaxos(mnm.PaxosConfig{
		Inputs: inputs,
		Leader: mnm.LeaderConfig{Notifier: mnm.SharedMemoryNotifier},
	}))
	if err != nil {
		return err
	}
	res, err := r.Run()
	if err != nil {
		return err
	}
	for p, e := range res.Errors {
		return fmt.Errorf("process %v: %w", p, e)
	}
	if !res.Stopped {
		return fmt.Errorf("no decision in %d steps", res.Steps)
	}

	fmt.Printf("decided in %d steps with 70%% message loss\n\n", res.Steps)
	for p := mnm.ProcID(0); int(p) < n; p++ {
		fmt.Printf("  %v proposed %-10q decided %q\n", p, inputs[p], r.Exposed(p, mnm.PaxosDecisionKey))
	}
	fmt.Printf("\nmessages sent: %d  dropped: %d  register ops: %d\n",
		counters.Total(mnm.MsgSent),
		counters.Total(mnm.MsgDropped),
		counters.Total(mnm.RegReadLocal)+counters.Total(mnm.RegReadRemote)+
			counters.Total(mnm.RegWriteLocal)+counters.Total(mnm.RegWriteRemote))
	fmt.Println("\nconsensus state lives in shared registers, which cannot be dropped;")
	fmt.Println("the only messages are Ω accusations, and losing them merely delays things.")
	return nil
}
