// Mutex example: the paper's §1 motivating scenario. Two ticket locks with
// identical FIFO semantics — one pure shared-memory (waiters spin on a
// register), one m&m (waiters sleep on their mailbox and are woken by a
// message) — run the same contended workload; the metrics show the spin
// disappear.
package main

import (
	"fmt"
	"os"

	"github.com/mnm-model/mnm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mutex: %v\n", err)
		os.Exit(1)
	}
}

const (
	procs  = 6
	rounds = 5
)

func run() error {
	fmt.Printf("%d processes × %d critical sections each:\n\n", procs, rounds)
	fmt.Println("lock   reg reads   reg writes   messages")

	mnmLock := mnm.NewMnMLock(0, "demo")
	reads, writes, msgs, err := measure(func(env mnm.Env, in *mnm.Inbox) error {
		for i := 0; i < rounds; i++ {
			tk, err := mnmLock.Acquire(env, in)
			if err != nil {
				return err
			}
			env.Yield() // critical section
			if err := mnmLock.Release(env, tk); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("m&m  %10d %12d %10d\n", reads, writes, msgs)

	spinLock := mnm.NewSpinLock(0, "demo")
	reads, writes, msgs, err = measure(func(env mnm.Env, _ *mnm.Inbox) error {
		for i := 0; i < rounds; i++ {
			tk, err := spinLock.Acquire(env)
			if err != nil {
				return err
			}
			env.Yield()
			if err := spinLock.Release(env, tk); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("spin %10d %12d %10d\n", reads, writes, msgs)

	fmt.Println("\nwaiters in the m&m lock perform no register reads while blocked —")
	fmt.Println("the releaser's message wakes them (\"react to data without spinning\", §1).")
	return nil
}

func measure(body func(mnm.Env, *mnm.Inbox) error) (reads, writes, msgs int64, err error) {
	counters := mnm.NewCounters(procs)
	alg := mnm.AlgorithmFunc(func(id mnm.ProcID) mnm.Process {
		return func(env mnm.Env) error {
			var in mnm.Inbox
			return body(env, &in)
		}
	})
	r, err := mnm.NewSim(mnm.SimConfig{
		RunConfig: mnm.RunConfig{GSM: mnm.CompleteGraph(procs), Seed: 5, Counters: counters},
		Scheduler: mnm.RandomScheduler(8),
		MaxSteps:  5_000_000,
	}, alg)
	if err != nil {
		return 0, 0, 0, err
	}
	res, err := r.Run()
	if err != nil {
		return 0, 0, 0, err
	}
	for p, e := range res.Errors {
		return 0, 0, 0, fmt.Errorf("process %v: %w", p, e)
	}
	if len(res.Halted) != procs {
		return 0, 0, 0, fmt.Errorf("lock deadlocked: %d of %d halted", len(res.Halted), procs)
	}
	reads = counters.Total(mnm.RegReadLocal) + counters.Total(mnm.RegReadRemote)
	writes = counters.Total(mnm.RegWriteLocal) + counters.Total(mnm.RegWriteRemote)
	msgs = counters.Total(mnm.MsgSent)
	return reads, writes, msgs, nil
}
