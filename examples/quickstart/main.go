// Quickstart: solve consensus and elect a leader in the m&m model with the
// one-call public API.
//
// The consensus run demonstrates the paper's headline capability: on a
// complete shared-memory graph, HBO decides even after 5 of 7 processes
// crash — far beyond the ⌊(n−1)/2⌋ = 3 ceiling of any pure
// message-passing consensus.
package main

import (
	"fmt"
	"os"

	"github.com/mnm-model/mnm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Consensus beyond the minority-crash ceiling -------------------
	const n = 7
	gsm := mnm.CompleteGraph(n)
	inputs := make([]mnm.ConsensusValue, n)
	for i := range inputs {
		inputs[i] = mnm.ConsensusValue(i % 2) // alternating 0, 1 proposals
	}
	// Crash a majority (5 of 7) before the first step.
	crashes := []mnm.Crash{
		{Proc: 0}, {Proc: 1}, {Proc: 2}, {Proc: 3}, {Proc: 4},
	}
	decided, err := mnm.SolveConsensus(gsm, inputs, 42, crashes...)
	if err != nil {
		return err
	}
	fmt.Printf("consensus: decided %v with 5 of %d processes crashed "+
		"(message passing alone tolerates only %d)\n", decided, n, (n-1)/2)

	// --- Leader election with one timely process -----------------------
	// Only process 2 is guaranteed timely; everyone else — and every
	// link — is fully asynchronous.
	ldr, err := mnm.ElectLeader(5, mnm.MessageNotifier, 2, 7)
	if err != nil {
		return err
	}
	fmt.Printf("leader election: all processes stabilized on %v "+
		"(only one process needed to be timely)\n", ldr)
	return nil
}
