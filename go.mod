module github.com/mnm-model/mnm

go 1.22
