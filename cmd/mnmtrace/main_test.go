package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mnm-model/mnm/internal/trace"
)

// dumpFile records a tiny flight on the named node and writes its JSONL
// dump (the /trace response body) to a file, returning the path and the
// root span's trace id.
func dumpFile(t *testing.T, dir, node string) (string, uint64) {
	t.Helper()
	f := trace.NewFlight(node, 16, 1)
	sc := f.Scope("group-1", nil)
	sp := sc.Start(0, trace.CAS, "g1.X 0→1")
	sp.Finish(nil)
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, node+".jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, sp.TraceID
}

func TestRunMergesDumps(t *testing.T) {
	dir := t.TempDir()
	pathA, idA := dumpFile(t, dir, "node-a")
	pathB, _ := dumpFile(t, dir, "node-b")

	var out, errb bytes.Buffer
	if code := run([]string{pathA, pathB}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"node node-a", "node node-b", "2 trace(s)", "cas"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("timeline missing %q:\n%s", want, out.String())
		}
	}

	// -trace filters to one id.
	out.Reset()
	if code := run([]string{"-trace", fmt.Sprintf("%016x", idA), pathA, pathB}, &out, &errb); code != 0 {
		t.Fatalf("filtered run = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "1 trace(s)") {
		t.Errorf("-trace did not filter to one trace:\n%s", out.String())
	}

	// An id absent from the dumps is a failure, not an empty success.
	if code := run([]string{"-trace", "deadbeef", pathA}, &out, &errb); code != 1 {
		t.Errorf("run with unknown trace id = %d, want 1", code)
	}
}

func TestRunScrapesURL(t *testing.T) {
	dir := t.TempDir()
	path, _ := dumpFile(t, dir, "node-a")
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(body)
	}))
	defer srv.Close()

	var out, errb bytes.Buffer
	if code := run([]string{srv.URL + "/trace"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "node node-a") {
		t.Errorf("timeline missing the scraped node:\n%s", out.String())
	}
}

func TestRunUsageAndErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("run with no args = %d, want 2", code)
	}
	if code := run([]string{"-trace", "zzz", "x.jsonl"}, &out, &errb); code != 2 {
		t.Errorf("run with unparsable -trace id = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errb); code != 1 {
		t.Errorf("run with a missing dumpfile = %d, want 1", code)
	}
}
