// Command mnmtrace merges per-node span flight-recorder dumps into one
// causally ordered cluster timeline.
//
// Each node of a distributed run records its own spans (rt ops, wire
// sends, RPC serves) into a bounded flight recorder, dumped as JSON Lines
// by the node's /trace endpoint. mnmtrace takes any number of those dumps
// — files, "-" for stdin, or http URLs scraped live — concatenates them,
// reassembles the traces by TraceID, and prints every trace as a span
// tree in Lamport order, so a cross-node operation (say, a remote CAS
// that survived a connection kill) reads as one story instead of two
// interleaved logs.
//
//	mnmtrace node1.jsonl node2.jsonl             # merge two dumpfiles
//	curl -s host:9090/trace | mnmtrace -         # one node from stdin
//	mnmtrace http://h1:9090/trace http://h2:9090/trace
//	mnmtrace -trace 01a2b3c4d5e6f708 dumps/*.jsonl
//
// Exit status: 0 ok, 1 no spans or a read failure, 2 usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"github.com/mnm-model/mnm/internal/trace"
	"github.com/mnm-model/mnm/internal/tracemerge"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mnmtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	traceID := fs.String("trace", "", "only render the trace with this id (hex, as printed in the timeline)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mnmtrace [-trace <hexid>] <dump>...\n")
		fmt.Fprintf(stderr, "each <dump> is a /trace JSONL file, \"-\" for stdin, or an http(s) URL\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	var filterID uint64
	if *traceID != "" {
		id, err := strconv.ParseUint(strings.TrimPrefix(*traceID, "0x"), 16, 64)
		if err != nil {
			fmt.Fprintf(stderr, "mnmtrace: bad -trace id %q: %v\n", *traceID, err)
			return 2
		}
		filterID = id
	}

	var spans []trace.Span
	var metas []trace.FlightMeta
	for _, arg := range fs.Args() {
		s, m, err := readDump(arg)
		if err != nil {
			fmt.Fprintf(stderr, "mnmtrace: %s: %v\n", arg, err)
			return 1
		}
		spans = append(spans, s...)
		metas = append(metas, m...)
	}

	c := tracemerge.Merge(spans, metas)
	if filterID != 0 {
		kept := c.Traces[:0]
		for _, t := range c.Traces {
			if t.ID == filterID {
				kept = append(kept, t)
			}
		}
		c.Traces = kept
		if len(c.Traces) == 0 {
			fmt.Fprintf(stderr, "mnmtrace: no trace %016x in the dumps\n", filterID)
			return 1
		}
	}
	if len(c.Traces) == 0 && len(c.Metas) == 0 {
		fmt.Fprintln(stderr, "mnmtrace: no spans in the dumps")
		return 1
	}
	if err := c.WriteTimeline(stdout); err != nil {
		fmt.Fprintf(stderr, "mnmtrace: %v\n", err)
		return 1
	}
	return 0
}

// readDump loads one dump source: an http(s) URL (a live /trace scrape),
// "-" for stdin, or a file path.
func readDump(arg string) ([]trace.Span, []trace.FlightMeta, error) {
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		resp, err := http.Get(arg)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return nil, nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		return trace.ReadSpans(resp.Body)
	}
	if arg == "-" {
		return trace.ReadSpans(os.Stdin)
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return trace.ReadSpans(f)
}
