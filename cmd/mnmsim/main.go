// Command mnmsim runs one m&m scenario in the deterministic simulator and
// reports the outcome: consensus (hbo or the ben-or baseline), leader
// election (either notifier), or the replicated log.
//
// Usage:
//
//	mnmsim -alg hbo -graph complete -n 7 -crash 0,1,2,3,4
//	mnmsim -alg benor -n 7 -crash 0,1,2
//	mnmsim -alg leader -n 5 -notifier shm -lossy -droprate 0.3
//	mnmsim -alg rsm -n 4 -commands 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/mnm-model/mnm/internal/benor"
	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/graph"
	"github.com/mnm-model/mnm/internal/hbo"
	"github.com/mnm-model/mnm/internal/leader"
	"github.com/mnm-model/mnm/internal/metrics"
	"github.com/mnm-model/mnm/internal/msgnet"
	"github.com/mnm-model/mnm/internal/rsm"
	"github.com/mnm-model/mnm/internal/sched"
	"github.com/mnm-model/mnm/internal/sim"
	"github.com/mnm-model/mnm/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		alg      = flag.String("alg", "hbo", "algorithm: hbo | benor | leader | rsm")
		gname    = flag.String("graph", "complete", "shared-memory graph: complete | edgeless | cycle | hypercube | petersen | randreg")
		n        = flag.Int("n", 7, "process count (ignored for petersen/hypercube)")
		d        = flag.Int("d", 3, "degree for randreg")
		dim      = flag.Int("dim", 3, "dimension for hypercube")
		crash    = flag.String("crash", "", "comma-separated process ids to crash at step 0")
		crashAt  = flag.Uint64("crashat", 0, "step at which the crash list applies")
		seed     = flag.Int64("seed", 1, "run seed")
		maxSteps = flag.Uint64("maxsteps", 5_000_000, "step budget")
		fq       = flag.Int("f", -1, "ben-or quorum parameter F (default ⌈n/2⌉−1)")
		notifier = flag.String("notifier", "msg", "leader notifier: msg | shm")
		lossy    = flag.Bool("lossy", false, "fair-lossy links")
		dropRate = flag.Float64("droprate", 0.2, "drop probability for -lossy")
		commands = flag.Int("commands", 3, "commands per process for rsm")
		timely   = flag.Int("timely", 1, "guaranteed-timely process for leader election")
		traceN   = flag.Int("trace", 0, "print the last N structured events of the run")
	)
	flag.Parse()

	g, err := buildGraph(*gname, *n, *d, *dim, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnmsim: %v\n", err)
		return 2
	}
	nn := g.N()

	crashes, err := parseCrashes(*crash, *crashAt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnmsim: %v\n", err)
		return 2
	}

	cfg := sim.Config{
		RunConfig: sim.RunConfig{GSM: g, Seed: *seed},
		MaxSteps:  *maxSteps,
		Crashes:   crashes,
	}
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(*traceN)
		cfg.Trace = rec
	}
	if *lossy {
		cfg.Links = msgnet.FairLossy
		cfg.Drop = msgnet.NewRandomDrop(*dropRate, *seed+1)
	}

	inputs := make([]benor.Val, nn)
	for i := range inputs {
		inputs[i] = benor.Val(i % 2)
	}

	var algo core.Algorithm
	var report func(r *sim.Runner, res *sim.Result)
	switch *alg {
	case "hbo":
		algo = hbo.New(hbo.Config{Inputs: inputs})
		cfg.StopWhen = func(r *sim.Runner) bool { return sim.AllCorrectExposed(r, hbo.DecisionKey) }
		report = func(r *sim.Runner, res *sim.Result) { reportConsensus(r, res, nn, hbo.DecisionKey) }
	case "benor":
		f := *fq
		if f < 0 {
			f = (nn - 1) / 2
		}
		algo = benor.New(benor.Config{F: f, Inputs: inputs})
		cfg.StopWhen = func(r *sim.Runner) bool { return sim.AllCorrectExposed(r, benor.DecisionKey) }
		report = func(r *sim.Runner, res *sim.Result) { reportConsensus(r, res, nn, benor.DecisionKey) }
	case "leader":
		kind := leader.MessageNotifier
		if *notifier == "shm" {
			kind = leader.SharedMemoryNotifier
		}
		algo = leader.New(leader.Config{Notifier: kind})
		cfg.Scheduler = &sched.TimelyProcess{
			Timely: core.ProcID(*timely),
			Bound:  4,
			Inner:  sched.NewRandom(*seed + 2),
		}
		cfg.StopWhen = leader.StableLeaderCondition(3_000)
		report = func(r *sim.Runner, res *sim.Result) {
			l, ok := leader.CommonLeader(r)
			fmt.Printf("stable leader: %v (common=%v)\n", l, ok)
		}
	case "rsm":
		algo = rsm.New(rsm.Config{CommandsPerProcess: *commands})
		total := nn * *commands
		cfg.StopWhen = func(r *sim.Runner) bool {
			for p := 0; p < nn; p++ {
				id := core.ProcID(p)
				if r.Crashed(id) {
					continue
				}
				applied, _ := r.Exposed(id, rsm.AppliedKey).(int)
				if r.Exposed(id, rsm.DoneKey) != true || applied < total {
					return false
				}
			}
			return true
		}
		report = func(r *sim.Runner, res *sim.Result) {
			for p := 0; p < nn; p++ {
				id := core.ProcID(p)
				fmt.Printf("replica %v: applied=%v hash=%x\n",
					id, r.Exposed(id, rsm.AppliedKey), r.Exposed(id, rsm.HashKey))
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "mnmsim: unknown algorithm %q\n", *alg)
		return 2
	}

	runner, err := sim.New(cfg, algo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnmsim: %v\n", err)
		return 1
	}
	res, err := runner.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnmsim: %v\n", err)
		return 1
	}

	fmt.Printf("graph: %v  seed: %d  crashes: %v\n", g, *seed, res.Crashed)
	fmt.Printf("steps: %d  stopped: %v  timed out: %v\n", res.Steps, res.Stopped, res.TimedOut)
	fmt.Printf("messages sent: %d  dropped: %d  register ops: %d\n",
		res.Counters.Total(metrics.MsgSent),
		res.Counters.Total(metrics.MsgDropped),
		res.Counters.Total(metrics.RegReadLocal)+res.Counters.Total(metrics.RegReadRemote)+
			res.Counters.Total(metrics.RegWriteLocal)+res.Counters.Total(metrics.RegWriteRemote))
	for p, e := range res.Errors {
		fmt.Printf("process %v error: %v\n", p, e)
	}
	report(runner, res)
	if rec != nil {
		fmt.Printf("\nlast %d events:\n", rec.Len())
		if _, err := rec.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mnmsim: %v\n", err)
		}
	}
	if !res.Stopped {
		return 1
	}
	return 0
}

func buildGraph(name string, n, d, dim int, seed int64) (*graph.Graph, error) {
	switch name {
	case "complete":
		return graph.Complete(n), nil
	case "edgeless":
		return graph.Edgeless(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "petersen":
		return graph.Petersen(), nil
	case "hypercube":
		return graph.Hypercube(dim), nil
	case "randreg":
		return graph.RandomConnectedRegular(n, d, rand.New(rand.NewSource(seed)))
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}

func parseCrashes(spec string, at uint64) ([]sim.Crash, error) {
	if spec == "" {
		return nil, nil
	}
	var out []sim.Crash
	for _, tok := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad crash id %q: %w", tok, err)
		}
		out = append(out, sim.Crash{Proc: core.ProcID(id), AtStep: at})
	}
	return out, nil
}

func reportConsensus(r *sim.Runner, res *sim.Result, n int, key string) {
	for p := 0; p < n; p++ {
		id := core.ProcID(p)
		if r.Crashed(id) {
			fmt.Printf("process %v: crashed\n", id)
			continue
		}
		fmt.Printf("process %v: decided %v\n", id, r.Exposed(id, key))
	}
}
