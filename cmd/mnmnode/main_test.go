package main

import (
	"bytes"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// buildBinary compiles mnmnode into a temp dir so the cluster tests can
// exec real OS processes — this is the one place the repo exercises the
// full multi-process deployment rather than in-process hosts.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mnmnode")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// reserveAddrs picks n free loopback ports by binding and releasing them.
// The tiny window between release and the node binding is an accepted
// test-only race; collisions fail loudly at startup.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// runCluster launches one mnmnode process per id, waits for all of them,
// and returns each node's stdout result line in id order.
func runCluster(t *testing.T, bin string, n int, extra ...string) []string {
	t.Helper()
	addrs := reserveAddrs(t, n)
	outs := make([]string, n)
	var mu sync.Mutex
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			args := append([]string{
				"-id", strconv.Itoa(i),
				"-n", strconv.Itoa(n),
				"-addrs", strings.Join(addrs, ","),
				"-timeout", "90s",
			}, extra...)
			cmd := exec.Command(bin, args...)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			err := cmd.Run()
			mu.Lock()
			outs[i] = strings.TrimSpace(stdout.String())
			mu.Unlock()
			if err != nil {
				errs <- fmt.Errorf("node %d: %v\nstderr: %s", i, err, stderr.String())
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	return outs
}

// TestProcessesAgreeOnConsensusOverLoopback runs HBO consensus as three
// OS processes over loopback TCP with mixed inputs and checks every
// process prints the same decision.
func TestProcessesAgreeOnConsensusOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	outs := runCluster(t, bin, 3,
		"-alg", "hbo", "-inputs", "1,0,1", "-seed", "42", "-linger", "300ms")
	for i, o := range outs {
		if !strings.HasPrefix(o, "decided ") {
			t.Fatalf("node %d printed %q, want a decision line", i, o)
		}
		if o != outs[0] {
			t.Fatalf("agreement violated: node 0 printed %q, node %d printed %q", outs[0], i, o)
		}
	}
}

// TestProcessesAgreeOnLeaderOverLoopback runs the Figure 3+4
// message-notifier leader election as three OS processes and checks they
// all stabilize on one common leader. It deliberately does not pin WHICH
// process wins: the OS can preempt a leader mid-tick for longer than a
// peer's step-counted heartbeat timer, which legitimately bumps that
// process's badness counter and moves the election — Ω promises eventual
// agreement on some correct process, not on the smallest id. Identity
// parity with the in-process transport is asserted in
// internal/rt's TestLeaderElectionOverTCP, where both runs share one
// OS process and such preemption does not occur.
func TestProcessesAgreeOnLeaderOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	outs := runCluster(t, bin, 3,
		"-alg", "le-msg", "-stable", "500ms", "-linger", "300ms")
	for i, o := range outs {
		if !strings.HasPrefix(o, "leader p") {
			t.Fatalf("node %d printed %q, want a leader line", i, o)
		}
		if o != outs[0] {
			t.Fatalf("agreement violated: node 0 printed %q, node %d printed %q", outs[0], i, o)
		}
	}
}
