package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mnm-model/mnm/internal/metrics"
	"github.com/mnm-model/mnm/internal/tracemerge"
)

// buildBinary compiles mnmnode into a temp dir so the cluster tests can
// exec real OS processes — this is the one place the repo exercises the
// full multi-process deployment rather than in-process hosts.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mnmnode")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// reserveAddrs picks n free loopback ports by binding and releasing them.
// The tiny window between release and the node binding is an accepted
// test-only race; collisions fail loudly at startup.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// runCluster launches one mnmnode process per id, waits for all of them,
// and returns each node's stdout result line in id order.
func runCluster(t *testing.T, bin string, n int, extra ...string) []string {
	t.Helper()
	addrs := reserveAddrs(t, n)
	outs := make([]string, n)
	var mu sync.Mutex
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			args := append([]string{
				"-id", strconv.Itoa(i),
				"-n", strconv.Itoa(n),
				"-addrs", strings.Join(addrs, ","),
				"-timeout", "90s",
			}, extra...)
			cmd := exec.Command(bin, args...)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			err := cmd.Run()
			mu.Lock()
			outs[i] = strings.TrimSpace(stdout.String())
			mu.Unlock()
			if err != nil {
				errs <- fmt.Errorf("node %d: %v\nstderr: %s", i, err, stderr.String())
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	return outs
}

// TestProcessesAgreeOnConsensusOverLoopback runs HBO consensus as three
// OS processes over loopback TCP with mixed inputs and checks every
// process prints the same decision.
func TestProcessesAgreeOnConsensusOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	outs := runCluster(t, bin, 3,
		"-alg", "hbo", "-inputs", "1,0,1", "-seed", "42", "-linger", "300ms")
	for i, o := range outs {
		if !strings.HasPrefix(o, "decided ") {
			t.Fatalf("node %d printed %q, want a decision line", i, o)
		}
		if o != outs[0] {
			t.Fatalf("agreement violated: node 0 printed %q, node %d printed %q", outs[0], i, o)
		}
	}
}

// TestProcessesAgreeOnLeaderOverLoopback runs the Figure 3+4
// message-notifier leader election as three OS processes and checks they
// all stabilize on one common leader. It deliberately does not pin WHICH
// process wins: the OS can preempt a leader mid-tick for longer than a
// peer's step-counted heartbeat timer, which legitimately bumps that
// process's badness counter and moves the election — Ω promises eventual
// agreement on some correct process, not on the smallest id. Identity
// parity with the in-process transport is asserted in
// internal/rt's TestLeaderElectionOverTCP, where both runs share one
// OS process and such preemption does not occur.
func TestProcessesAgreeOnLeaderOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	outs := runCluster(t, bin, 3,
		"-alg", "le-msg", "-stable", "500ms", "-linger", "300ms")
	for i, o := range outs {
		if !strings.HasPrefix(o, "leader p") {
			t.Fatalf("node %d printed %q, want a leader line", i, o)
		}
		if o != outs[0] {
			t.Fatalf("agreement violated: node 0 printed %q, node %d printed %q", outs[0], i, o)
		}
	}
}

// TestShardedMeshOverLoopback boots the multi-tenant deployment: two OS
// processes, each hosting the base leader-election group plus four
// shards (-groups 4) multiplexed over the same connection pair, with
// the span flight recorder on. While the nodes linger it polls /status
// until every shard reports a leader on both nodes, then checks the
// root /metrics renders group-labeled rows (counters and span-latency
// histograms) next to the unlabeled base rows, and merges both nodes'
// /trace dumps into a cluster timeline that crosses the node boundary.
func TestShardedMeshOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	addrs := reserveAddrs(t, 2)
	maddrs := reserveAddrs(t, 2)
	outs := make([]string, 2)
	var mu sync.Mutex
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			cmd := exec.Command(bin,
				"-id", strconv.Itoa(i), "-n", "2",
				"-addrs", strings.Join(addrs, ","),
				"-alg", "le-shm", "-stable", "500ms", "-groups", "4",
				"-timeout", "90s", "-linger", "30s",
				"-metrics-addr", maddrs[i],
				"-trace-flight", "8192", "-log-json",
			)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			err := cmd.Run()
			mu.Lock()
			outs[i] = strings.TrimSpace(stdout.String())
			mu.Unlock()
			if err != nil {
				done <- fmt.Errorf("node %d: %v\nstderr: %s", i, err, stderr.String())
				return
			}
			done <- nil
		}()
	}

	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	for i, ma := range maddrs {
		for {
			var st struct {
				Groups map[string]struct {
					Leader string `json:"leader"`
				} `json:"groups"`
			}
			resp, err := client.Get("http://" + ma + "/status")
			if err == nil && resp.StatusCode == http.StatusOK {
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("node %d: /status does not parse: %v", i, err)
				}
				led := 0
				for _, g := range st.Groups {
					if g.Leader != "" {
						led++
					}
				}
				if len(st.Groups) == 4 && led == 4 {
					break
				}
			} else if resp != nil {
				resp.Body.Close()
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("node %d: 4 led shards never appeared in /status", i)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	// Shard counters render next to the base rows in one scrape.
	resp, err := client.Get("http://" + maddrs[0] + "/metrics")
	if err != nil {
		t.Fatalf("prom scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, re := range []string{
		`(?m)^mnm_msg_sent_total\{proc="\d+"\} \d+$`,
		`(?m)^mnm_msg_sent_total\{group="group-\d+",proc="\d+"\} \d+$`,
		`(?m)^mnm_span_(read|write|cas|send|recv|serve)_seconds_count\{group="group-\d+"\} \d+$`,
	} {
		if !regexp.MustCompile(re).Match(body) {
			t.Errorf("prom exposition lacks %s rows:\n%.400s", re, body)
		}
	}
	// Both nodes' flight recorders scrape over /trace; merged, they must
	// reconstruct at least one trace that crossed the node boundary (the
	// shards' remote register ops guarantee a steady supply).
	var dumps bytes.Buffer
	for i, ma := range maddrs {
		resp, err := client.Get("http://" + ma + "/trace")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: /trace scrape: err=%v resp=%v", i, err, resp)
		}
		if _, err := io.Copy(&dumps, resp.Body); err != nil {
			t.Fatalf("node %d: reading /trace: %v", i, err)
		}
		resp.Body.Close()
	}
	cluster, err := tracemerge.Read(&dumps)
	if err != nil {
		t.Fatalf("merging /trace dumps: %v", err)
	}
	if len(cluster.Metas) != 2 {
		t.Fatalf("merged %d flight headers, want one per node", len(cluster.Metas))
	}
	crossNode := 0
	for _, tr := range cluster.Traces {
		if len(tr.Nodes()) == 2 {
			crossNode++
		}
	}
	if crossNode == 0 {
		t.Errorf("no trace in the merged dumps crosses the node boundary (%d traces total)", len(cluster.Traces))
	}

	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Only the line's shape is asserted, not cross-node identity: with
	// four shards spinning next to the base group, a single-CPU box
	// oversubscribes hard enough that each node's independent 500ms
	// stability window can close on a different transient leader. The
	// agreement property itself is pinned by
	// TestProcessesAgreeOnLeaderOverLoopback, which runs without shards.
	for i, o := range outs {
		if !strings.HasPrefix(o, "leader p") {
			t.Fatalf("node %d printed %q, want a leader line", i, o)
		}
	}
}

// TestMetricsPlaneOverLoopback runs a three-process consensus cluster with
// the observability plane enabled and scrapes it while the nodes linger:
// /metrics must serve both exposition formats, /healthz must report ok
// once the mesh is up, watch mode must render a cluster table over the
// same endpoints, and every node must dump a parseable JSONL trace on
// exit.
func TestMetricsPlaneOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	addrs := reserveAddrs(t, 3)
	maddrs := reserveAddrs(t, 3)
	traceDir := t.TempDir()
	traces := make([]string, 3)
	outs := make([]string, 3)
	var mu sync.Mutex
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		traces[i] = filepath.Join(traceDir, fmt.Sprintf("trace%d.jsonl", i))
		i := i
		go func() {
			cmd := exec.Command(bin,
				"-id", strconv.Itoa(i), "-n", "3",
				"-addrs", strings.Join(addrs, ","),
				"-alg", "hbo", "-inputs", "1,0,1", "-seed", "7",
				"-timeout", "90s", "-linger", "15s",
				"-metrics-addr", maddrs[i],
				"-sample-interval", "200ms",
				"-trace", "256", "-trace-out", traces[i],
			)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			err := cmd.Run()
			mu.Lock()
			outs[i] = strings.TrimSpace(stdout.String())
			mu.Unlock()
			if err != nil {
				done <- fmt.Errorf("node %d: %v\nstderr: %s", i, err, stderr.String())
				return
			}
			done <- nil
		}()
	}

	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	promRe := regexp.MustCompile(`(?m)^mnm_msg_sent_total\{proc="\d+"\} \d+$`)
	for i, ma := range maddrs {
		// JSON export, retried until the node's plane is listening.
		var doc metrics.ExportJSON
		for {
			resp, err := client.Get("http://" + ma + "/metrics?format=json")
			if err == nil && resp.StatusCode == http.StatusOK {
				err = json.NewDecoder(resp.Body).Decode(&doc)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("node %d: json metrics do not parse: %v", i, err)
				}
				break
			}
			if resp != nil {
				resp.Body.Close()
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("node %d: metrics endpoint %s never came up", i, ma)
			}
			time.Sleep(50 * time.Millisecond)
		}
		if _, ok := doc.Counters["msg_sent"]; !ok {
			t.Errorf("node %d: json export lacks msg_sent", i)
		}
		// Prometheus text exposition.
		resp, err := client.Get("http://" + ma + "/metrics")
		if err != nil {
			t.Fatalf("node %d: prom scrape: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !promRe.Match(body) {
			t.Errorf("node %d: prom exposition lacks mnm_msg_sent_total samples:\n%.400s", i, body)
		}
	}
	// /healthz flips to ok once the node's outbound mesh is up.
	for fetchHealth(client, maddrs[0]) != "ok" {
		if !time.Now().Before(deadline) {
			t.Fatal("node 0: /healthz never reported ok")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Watch mode renders a table over the live endpoints (two refreshes:
	// the second has a previous poll to difference against).
	var table bytes.Buffer
	if code := runWatch(maddrs, 200*time.Millisecond, 2, &table); code != 0 {
		t.Fatalf("runWatch exit = %d", code)
	}
	if !strings.Contains(table.String(), "NODE") || !strings.Contains(table.String(), maddrs[0]) {
		t.Errorf("watch table lacks header or node rows:\n%s", table.String())
	}

	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i, o := range outs {
		if !strings.HasPrefix(o, "decided ") || o != outs[0] {
			t.Fatalf("node %d printed %q (node 0: %q)", i, o, outs[0])
		}
	}
	// Each node dumped a JSONL trace; every line must parse.
	for i, p := range traces {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("node %d: trace dump: %v", i, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) == 0 || lines[0] == "" {
			t.Fatalf("node %d: empty trace dump", i)
		}
		for _, l := range lines {
			var obj map[string]any
			if err := json.Unmarshal([]byte(l), &obj); err != nil {
				t.Fatalf("node %d: trace line %q does not parse: %v", i, l, err)
			}
		}
	}
}
