// Command mnmnode runs ONE process of an m&m system as one OS process,
// communicating with its peers over TCP: messages travel as compact
// binary frames through internal/transport/tcp (gob remains the fallback
// codec for unregistered payload types), and shared registers owned by
// remote processes are reached through the same transport's RPC plane.
// Launching n mnmnode processes with the same -addrs table yields the
// paper's model over real sockets. With -tls-cert/-tls-key (and
// optionally -tls-ca) every inter-node connection is wrapped in TLS.
//
// Usage (three shells, or one script):
//
//	mnmnode -id 0 -n 3 -addrs 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402 -alg hbo -inputs 1,0,1
//	mnmnode -id 1 -n 3 -addrs ... -alg hbo -inputs 1,0,1
//	mnmnode -id 2 -n 3 -addrs ... -alg hbo -inputs 1,0,1
//
// Each node prints one result line to stdout:
//
//	decided 1                 (consensus)
//	leader p0                 (leader election, once stable for -stable)
//	committed 6 9a3c…         (replicated log: applied count + chain hash)
//
// With -durable -data-dir DIR the node runs in crash-recovery mode: every
// write to a register it owns and every unacknowledged transport frame is
// journaled (fsync'd) under DIR/node-<id>/ before it takes effect, and a
// restarted node — kill -9 included — recovers the registers, the
// retransmission queue, and its duplicate-filter marks before serving
// peers. Pair it with -alg rsm (a leader-sequenced replicated log striped
// over the shared registers, -cmds commands per process) to watch a log
// prefix survive a crash: restart the killed node with the same flags and
// both incarnations print identical "committed" lines.
//
// With -metrics-addr each node additionally serves its observability
// plane over HTTP (/metrics, /healthz, /status, /trace, /debug/pprof;
// see internal/obs), and `mnmnode -watch -addrs <metrics endpoints>`
// turns the binary into a read-only poller printing a cluster rate
// table — the steady state of Theorem 5.1 reads as zeros in the MSG/S
// column while register operations keep flowing. With -trace N the node
// retains the last N structured events and dumps them as JSON Lines on
// exit. With -trace-flight N the node records the last N spans of its
// distributed operations (sends, remote register RPCs, serves) into a
// flight recorder served at /trace; merge the per-node dumps with
// cmd/mnmtrace into one causally ordered cluster timeline.
//
// Diagnostics go to stderr through log/slog: -log-level picks the
// threshold (debug|info|warn|error; -v is shorthand for debug, which
// includes connection lifecycle events), -log-json switches the text
// handler for JSON lines.
//
// With -groups N the node is multi-tenant: besides the base run it
// opens N additional leader-election groups (shards 1..N), all
// multiplexed over the same TCP connections through the sharded
// transport (see DESIGN.md §4.3.3). Each group elects independently;
// /status grows a "groups" map with one entry per shard and /metrics
// renders each shard's counters with a group label.
//
// The transport's timing knobs are exposed as flags (-connect-timeout,
// -backoff-base, -backoff-max, -write-timeout, -call-timeout,
// -drain-timeout); zero keeps the tcp.Timeouts default.
package main

import (
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/mnm-model/mnm/internal/benor"
	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/directory"
	"github.com/mnm-model/mnm/internal/durable"
	"github.com/mnm-model/mnm/internal/graph"
	"github.com/mnm-model/mnm/internal/hbo"
	"github.com/mnm-model/mnm/internal/leader"
	"github.com/mnm-model/mnm/internal/metrics"
	"github.com/mnm-model/mnm/internal/obs"
	"github.com/mnm-model/mnm/internal/rsm"
	"github.com/mnm-model/mnm/internal/rt"
	"github.com/mnm-model/mnm/internal/trace"
	"github.com/mnm-model/mnm/internal/transport"
	"github.com/mnm-model/mnm/internal/transport/tcp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id      = flag.Int("id", 0, "this node's process id (0..n-1)")
		n       = flag.Int("n", 3, "system size")
		addrs   = flag.String("addrs", "", "comma-separated host:port of every process, index = id (required)")
		alg     = flag.String("alg", "hbo", "algorithm: hbo | le-msg | le-shm | rsm")
		cmds    = flag.Int("cmds", 2, "commands each process submits to the replicated log (-alg rsm)")
		seed    = flag.Int64("seed", 1, "run seed")
		inputs  = flag.String("inputs", "", "comma-separated 0/1 proposals for hbo (one per process)")
		stable  = flag.Duration("stable", 2*time.Second, "how long a leader must hold before it is reported")
		timeout = flag.Duration("timeout", 60*time.Second, "overall deadline")
		linger  = flag.Duration("linger", time.Second, "how long to keep serving peers after finishing")
		verbose = flag.Bool("v", false, "shorthand for -log-level debug (connection lifecycle events)")
		groups  = flag.Int("groups", 0, "additional leader-election groups (shards 1..N) multiplexed over the same mesh")

		logLevel = flag.String("log-level", "info", "stderr log threshold: debug | info | warn | error")
		logJSON  = flag.Bool("log-json", false, "emit stderr logs as JSON lines instead of text")

		connectT = flag.Duration("connect-timeout", 0, "TCP dial timeout per connection attempt (0 = transport default)")
		backoffB = flag.Duration("backoff-base", 0, "initial reconnect backoff (0 = transport default)")
		backoffM = flag.Duration("backoff-max", 0, "reconnect backoff ceiling (0 = transport default)")
		writeT   = flag.Duration("write-timeout", 0, "per-flush socket write deadline (0 = transport default)")
		callT    = flag.Duration("call-timeout", 0, "remote-register RPC deadline (0 = transport default)")
		drainT   = flag.Duration("drain-timeout", 0, "unacked-frame drain budget on shutdown (0 = transport default)")

		metricsAddr = flag.String("metrics-addr", "", "host:port serving /metrics, /healthz and /status (empty disables)")
		sampleEvery = flag.Duration("sample-interval", time.Second, "registry sampling interval behind /status rates")
		traceN      = flag.Int("trace", 0, "retain the last N structured events and dump them as JSON Lines on exit")
		traceOut    = flag.String("trace-out", "", "file for the -trace dump (default stderr)")
		flightN     = flag.Int("trace-flight", 0, "span flight recorder capacity (0 disables span tracing)")
		flightS     = flag.Int("trace-sample", 1, "head-sample 1 of every M traces in the flight recorder")
		watch       = flag.Bool("watch", false, "watch mode: poll the /metrics endpoints in -addrs and print a cluster rate table")
		watchEvery  = flag.Duration("watch-interval", time.Second, "polling interval in -watch mode")
		watchCount  = flag.Int("watch-count", 0, "table refreshes in -watch mode (0 = until interrupted)")

		durableF = flag.Bool("durable", false, "journal owned registers and unacked frames to -data-dir; a restart recovers them (crash-recovery mode)")
		dataDir  = flag.String("data-dir", "", "directory for -durable state (a node-<id> subdirectory per node)")

		tlsCert = flag.String("tls-cert", "", "PEM certificate presented to peers (enables TLS; requires -tls-key)")
		tlsKey  = flag.String("tls-key", "", "PEM private key for -tls-cert")
		tlsCA   = flag.String("tls-ca", "", "PEM bundle of roots trusted when dialing peers (default: system roots)")
	)
	flag.Parse()

	if *watch {
		if *addrs == "" {
			fmt.Fprintln(os.Stderr, "mnmnode: -watch requires -addrs listing peer metrics endpoints")
			return 2
		}
		return runWatch(strings.Split(*addrs, ","), *watchEvery, *watchCount, os.Stdout)
	}

	addrList := strings.Split(*addrs, ",")
	if *addrs == "" || len(addrList) != *n {
		fmt.Fprintf(os.Stderr, "mnmnode: -addrs must list exactly n=%d addresses\n", *n)
		return 2
	}
	if *id < 0 || *id >= *n {
		fmt.Fprintf(os.Stderr, "mnmnode: -id %d out of range [0,%d)\n", *id, *n)
		return 2
	}
	self := core.ProcID(*id)

	logger, err := buildLogger(*logLevel, *logJSON, *verbose, *id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 2
	}
	// The runtime and transport speak Logf; the shim routes their
	// lifecycle diagnostics to slog at debug (they are chatty by design —
	// raise to -log-level debug to see them).
	logf := func(format string, args ...any) {
		logger.Debug(fmt.Sprintf(format, args...))
	}

	tlsCfg, err := buildTLS(*tlsCert, *tlsKey, *tlsCA)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 1
	}

	// The registry exists before the transport so the frame WAL's fsync
	// histogram lands in the same schema /metrics serves.
	reg := metrics.NewRegistry(*n)
	var nodeDir string
	tcpCfg := tcp.Config{
		N:          *n,
		Hosted:     []core.ProcID{self},
		Addrs:      addrList,
		ListenAddr: addrList[*id],
		Registry:   reg,
		Logf:       logf,
		TLS:        tlsCfg,
		Timeouts: tcp.Timeouts{
			Connect:     *connectT,
			BackoffBase: *backoffB,
			BackoffMax:  *backoffM,
			Write:       *writeT,
			Call:        *callT,
			Drain:       *drainT,
		},
	}
	if *durableF {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "mnmnode: -durable requires -data-dir")
			return 2
		}
		nodeDir = filepath.Join(*dataDir, fmt.Sprintf("node-%d", *id))
		tcpCfg.Durability = &tcp.Durability{Dir: filepath.Join(nodeDir, "transport")}
	}
	tr, err := tcp.New(tcpCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 1
	}
	var durStore *durable.Registers
	if *durableF {
		durStore, err = durable.OpenRegisters(filepath.Join(nodeDir, "registers"), durable.RegistersOptions{Registry: reg})
		if err != nil {
			tr.Close()
			fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
			return 1
		}
		if n := len(durStore.Recovered()); n > 0 {
			logger.Info("recovered durable state", "registers", n, "dir", nodeDir)
		}
	}

	var flight *trace.Flight
	if *flightN > 0 {
		flight = trace.NewFlight(addrList[*id], *flightN, *flightS)
	}
	cfg := rt.Config{
		RunConfig: rt.RunConfig{GSM: graph.Complete(*n), Seed: *seed, Logf: logf},
		Transport: tr,
		Hosted:    []core.ProcID{self},
		Registry:  reg,
		Flight:    flight,
		Durable:   durStore,
	}
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(*traceN)
		cfg.Trace = rec
	}

	var algo core.Algorithm
	var finish func(h *rt.Host, deadline time.Time) (string, error)
	switch *alg {
	case "hbo":
		vals, err := parseInputs(*inputs, *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
			return 2
		}
		algo = hbo.New(hbo.Config{Inputs: vals, HaltAfterDecide: true})
		finish = func(h *rt.Host, deadline time.Time) (string, error) {
			v, err := awaitExposed(h, self, hbo.DecisionKey, deadline)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("decided %d", v.(benor.Val)), nil
		}
	case "le-msg", "le-shm":
		kind := leader.MessageNotifier
		if *alg == "le-shm" {
			kind = leader.SharedMemoryNotifier
		}
		algo = leader.New(leader.Config{Notifier: kind})
		window := *stable
		finish = func(h *rt.Host, deadline time.Time) (string, error) {
			l, err := awaitStableLeader(h, self, window, deadline)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("leader %v", l), nil
		}
	case "rsm":
		// Crash-recovery replication: shared-memory leader notification
		// (no extra message load) and fault-tolerant ticks, so a peer that
		// is down for a restart reads as unavailable, not fatal.
		algo = rsm.New(rsm.Config{
			CommandsPerProcess: *cmds,
			TolerateMemFaults:  true,
			Leader:             leader.Config{Notifier: leader.SharedMemoryNotifier},
		})
		total := *n * *cmds
		finish = func(h *rt.Host, deadline time.Time) (string, error) {
			return awaitRSM(h, self, total, deadline)
		}
	default:
		fmt.Fprintf(os.Stderr, "mnmnode: unknown -alg %q\n", *alg)
		return 2
	}

	h, err := rt.New(cfg, algo)
	if err != nil {
		tr.Close()
		if durStore != nil {
			durStore.Close()
		}
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 1
	}
	// Multi-tenant plane: shards 1..*groups share tr's connections. The
	// node is built up front (so /status can render it) but the groups are
	// opened only once the mesh is up.
	var node *rt.Node
	if *groups > 0 {
		node, err = rt.NewNode(rt.NodeConfig{
			Transport: tr,
			Directory: directory.Uniform{Addrs: addrList},
			Registry:  reg,
			Flight:    flight,
			Logf:      logf,
		})
		if err != nil {
			h.Stop()
			fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
			return 1
		}
	}
	if rec != nil {
		defer func() {
			if err := dumpTrace(rec, *traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "mnmnode: trace dump: %v\n", err)
			}
		}()
	}
	isLE := strings.HasPrefix(*alg, "le-")
	if *metricsAddr != "" {
		sampler := metrics.NewSampler(reg, *sampleEvery, 600)
		sampler.Start()
		defer sampler.Stop()
		srv, err := obs.Serve(*metricsAddr, obs.Config{
			Registry:  reg,
			Sampler:   sampler,
			Transport: tr,
			Hosted:    []core.ProcID{self},
			Node:      addrList[*id],
			Flight:    flight,
			Status: func() map[string]any {
				st := map[string]any{"alg": *alg}
				if isLE {
					if v, ok := h.Exposed(self, leader.LeaderKey).(core.ProcID); ok && v != core.NoProc {
						st["leader"] = fmt.Sprintf("%v", v)
					}
				}
				if *alg == "rsm" {
					if v, ok := h.Exposed(self, rsm.AppliedKey).(int); ok {
						st["applied"] = v
					}
					if v, ok := h.Exposed(self, rsm.HashKey).(uint64); ok {
						st["hash"] = fmt.Sprintf("%016x", v)
					}
					if v, ok := h.Exposed(self, rsm.DoneKey).(bool); ok {
						st["done"] = v
					}
				}
				if node != nil {
					st["groups"] = groupStatus(node, self)
				}
				return st
			},
		})
		if err != nil {
			h.Stop()
			fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
			return 1
		}
		defer srv.Close()
		logger.Info("observability plane up", "url", "http://"+srv.Addr())
	}
	if isLE {
		stopMon := make(chan struct{})
		defer close(stopMon)
		go monitorLeader(h, self, reg.Counters(), stopMon)
	}
	deadline := time.Now().Add(*timeout)
	if err := waitMesh(tr, self, *n, deadline); err != nil {
		h.Stop()
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 1
	}
	h.Start()
	var shards []*rt.Group
	stopShards := func() {
		for _, g := range shards {
			g.Stop()
		}
	}
	if node != nil {
		for gid := 1; gid <= *groups; gid++ {
			g, err := node.OpenGroup(transport.GroupID(gid), rt.GroupConfig{
				RunConfig: rt.RunConfig{GSM: graph.Complete(*n), Seed: *seed ^ int64(gid)<<16, Logf: logf},
			}, leader.New(leader.Config{Notifier: leader.SharedMemoryNotifier}))
			if err != nil {
				stopShards()
				h.Stop()
				fmt.Fprintf(os.Stderr, "mnmnode: group %d: %v\n", gid, err)
				return 1
			}
			g.Start()
			shards = append(shards, g)
		}
		logger.Info("opened groups over the shared mesh", "groups", *groups)
	}
	line, err := finish(h, deadline)
	if err != nil {
		stopShards()
		h.Stop()
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 1
	}
	fmt.Println(line)
	// Keep serving register reads and retransmissions for peers that have
	// not finished yet, then drain and tear down (groups detach first; the
	// base host's Stop is the one that closes the shared transport).
	time.Sleep(*linger)
	stopShards()
	res := h.Stop()
	for p, e := range res.Errors {
		fmt.Fprintf(os.Stderr, "mnmnode: process %v: %v\n", p, e)
		return 1
	}
	logger.Debug("done", "steps", res.Steps, "elapsed", res.Elapsed.Round(time.Millisecond))
	return 0
}

// buildLogger assembles the stderr slog logger from the -log-level,
// -log-json and -v flags; every record carries the node id.
func buildLogger(level string, jsonOut, verbose bool, id int) (*slog.Logger, error) {
	if verbose {
		level = "debug"
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h).With("node", id), nil
}

// groupStatus renders one /status entry per open group: the leader this
// node's process has adopted (once there is one) and the group's message
// totals, so a scrape shows every shard settling into the Theorem 5.1
// steady state (leader present, msgs_sent flat).
func groupStatus(node *rt.Node, self core.ProcID) map[string]any {
	out := make(map[string]any)
	for _, gid := range node.Groups() {
		g := node.Group(gid)
		if g == nil {
			continue
		}
		ent := map[string]any{}
		if v, ok := g.Exposed(self, leader.LeaderKey).(core.ProcID); ok && v != core.NoProc {
			ent["leader"] = fmt.Sprintf("%v", v)
		}
		snap := g.Counters().Snapshot(0)
		ent["msgs_sent"] = snap.Total(metrics.MsgSent)
		ent["msgs_delivered"] = snap.Total(metrics.MsgDelivered)
		out[fmt.Sprintf("%d", gid)] = ent
	}
	return out
}

// monitorLeader polls the node's exposed leader output and meters every
// adoption of a new leader as a LeaderChanges event, so election churn is
// visible on the metrics plane (a clean run settles at 1).
func monitorLeader(h *rt.Host, self core.ProcID, c *metrics.Counters, stop <-chan struct{}) {
	cur := core.NoProc
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		v, ok := h.Exposed(self, leader.LeaderKey).(core.ProcID)
		if !ok || v == core.NoProc || v == cur {
			continue
		}
		cur = v
		c.Record(self, metrics.LeaderChanges, 1)
	}
}

// dumpTrace writes the retained trace ring as JSON Lines — to stderr by
// default, so it never mixes with the result line on stdout.
func dumpTrace(rec *trace.Recorder, path string) error {
	w := io.Writer(os.Stderr)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rec.WriteJSONL(w)
}

// waitMesh blocks until this node's outbound link to every peer is up.
// Starting earlier is legal — sends queue and retransmit — but the
// step-counted heartbeat timers of the leader detector assume comparable
// step rates, and a process stalled in connect backoff mid-step looks
// exactly like a crashed leader to an already-connected peer.
func waitMesh(tr *tcp.Transport, self core.ProcID, n int, deadline time.Time) error {
	for q := 0; q < n; q++ {
		p := core.ProcID(q)
		if p == self {
			continue
		}
		for tr.LinkState(self, p) != transport.LinkUp {
			if !time.Now().Before(deadline) {
				return fmt.Errorf("link to process %v not up before deadline", p)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}

// parseInputs parses the -inputs list into benor values.
func parseInputs(s string, n int) ([]benor.Val, error) {
	if s == "" {
		return nil, fmt.Errorf("-inputs is required for hbo")
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-inputs has %d values, want n=%d", len(parts), n)
	}
	out := make([]benor.Val, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || (v != 0 && v != 1) {
			return nil, fmt.Errorf("-inputs[%d] = %q, want 0 or 1", i, p)
		}
		out[i] = benor.Val(v)
	}
	return out, nil
}

// awaitExposed polls until process p exposes key, or the deadline passes.
func awaitExposed(h *rt.Host, p core.ProcID, key string, deadline time.Time) (core.Value, error) {
	for time.Now().Before(deadline) {
		if v := h.Exposed(p, key); v != nil {
			return v, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("timed out waiting for %q", key)
}

// awaitRSM polls the replica's exposed outputs until its own commands all
// committed, the applied log covers every process's commands, and the
// (applied, hash) pair has been still for half a second — the hash chain
// over a settled log is the cross-node agreement check, so the line is
// printed only once it can no longer move.
func awaitRSM(h *rt.Host, p core.ProcID, total int, deadline time.Time) (string, error) {
	lastApplied, lastHash := -1, uint64(0)
	var since time.Time
	for time.Now().Before(deadline) {
		applied, _ := h.Exposed(p, rsm.AppliedKey).(int)
		hash, _ := h.Exposed(p, rsm.HashKey).(uint64)
		done, _ := h.Exposed(p, rsm.DoneKey).(bool)
		if applied != lastApplied || hash != lastHash {
			lastApplied, lastHash, since = applied, hash, time.Now()
		}
		if done && applied >= total && time.Since(since) >= 500*time.Millisecond {
			return fmt.Sprintf("committed %d %016x", applied, hash), nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "", fmt.Errorf("timed out waiting for the replicated log (applied %d of %d)", lastApplied, total)
}

// awaitStableLeader polls process p's leader output until it has held one
// non-⊥ value for window, or the deadline passes.
func awaitStableLeader(h *rt.Host, p core.ProcID, window time.Duration, deadline time.Time) (core.ProcID, error) {
	cur := core.NoProc
	var since time.Time
	for time.Now().Before(deadline) {
		l := core.NoProc
		if v, ok := h.Exposed(p, leader.LeaderKey).(core.ProcID); ok {
			l = v
		}
		if l != cur {
			cur, since = l, time.Now()
		}
		if cur != core.NoProc && time.Since(since) >= window {
			return cur, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return core.NoProc, fmt.Errorf("timed out waiting for a stable leader (last %v)", cur)
}

// buildTLS assembles the transport TLS configuration from the -tls-*
// flags: nil when TLS is off, an error when the flag set is incoherent
// (every node both serves and dials, so a certificate is mandatory the
// moment TLS is on).
func buildTLS(certFile, keyFile, caFile string) (*tls.Config, error) {
	if certFile == "" && keyFile == "" && caFile == "" {
		return nil, nil
	}
	if certFile == "" || keyFile == "" {
		return nil, fmt.Errorf("TLS needs both -tls-cert and -tls-key (every node serves its peers)")
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("loading TLS key pair: %w", err)
	}
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	if caFile != "" {
		pem, err := os.ReadFile(caFile)
		if err != nil {
			return nil, fmt.Errorf("reading -tls-ca: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("-tls-ca %s holds no usable PEM certificates", caFile)
		}
		cfg.RootCAs = pool
	}
	return cfg, nil
}
