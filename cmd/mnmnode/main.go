// Command mnmnode runs ONE process of an m&m system as one OS process,
// communicating with its peers over TCP: messages travel as gob frames
// through internal/transport/tcp, and shared registers owned by remote
// processes are reached through the same transport's RPC plane. Launching
// n mnmnode processes with the same -addrs table yields the paper's model
// over real sockets.
//
// Usage (three shells, or one script):
//
//	mnmnode -id 0 -n 3 -addrs 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402 -alg hbo -inputs 1,0,1
//	mnmnode -id 1 -n 3 -addrs ... -alg hbo -inputs 1,0,1
//	mnmnode -id 2 -n 3 -addrs ... -alg hbo -inputs 1,0,1
//
// Each node prints one result line to stdout:
//
//	decided 1        (consensus)
//	leader p0        (leader election, once stable for -stable)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/mnm-model/mnm/internal/benor"
	"github.com/mnm-model/mnm/internal/core"
	"github.com/mnm-model/mnm/internal/graph"
	"github.com/mnm-model/mnm/internal/hbo"
	"github.com/mnm-model/mnm/internal/leader"
	"github.com/mnm-model/mnm/internal/rt"
	"github.com/mnm-model/mnm/internal/transport"
	"github.com/mnm-model/mnm/internal/transport/tcp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id      = flag.Int("id", 0, "this node's process id (0..n-1)")
		n       = flag.Int("n", 3, "system size")
		addrs   = flag.String("addrs", "", "comma-separated host:port of every process, index = id (required)")
		alg     = flag.String("alg", "hbo", "algorithm: hbo | le-msg | le-shm")
		seed    = flag.Int64("seed", 1, "run seed")
		inputs  = flag.String("inputs", "", "comma-separated 0/1 proposals for hbo (one per process)")
		stable  = flag.Duration("stable", 2*time.Second, "how long a leader must hold before it is reported")
		timeout = flag.Duration("timeout", 60*time.Second, "overall deadline")
		linger  = flag.Duration("linger", time.Second, "how long to keep serving peers after finishing")
		verbose = flag.Bool("v", false, "log connection lifecycle events to stderr")
	)
	flag.Parse()

	addrList := strings.Split(*addrs, ",")
	if *addrs == "" || len(addrList) != *n {
		fmt.Fprintf(os.Stderr, "mnmnode: -addrs must list exactly n=%d addresses\n", *n)
		return 2
	}
	if *id < 0 || *id >= *n {
		fmt.Fprintf(os.Stderr, "mnmnode: -id %d out of range [0,%d)\n", *id, *n)
		return 2
	}
	self := core.ProcID(*id)

	var logf func(string, ...any)
	if *verbose {
		l := log.New(os.Stderr, fmt.Sprintf("node%d ", *id), log.Lmicroseconds)
		logf = l.Printf
	}

	tr, err := tcp.New(tcp.Config{
		N:          *n,
		Hosted:     []core.ProcID{self},
		Addrs:      addrList,
		ListenAddr: addrList[*id],
		Logf:       logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 1
	}

	cfg := rt.Config{
		RunConfig: rt.RunConfig{GSM: graph.Complete(*n), Seed: *seed, Logf: logf},
		Transport: tr,
		Hosted:    []core.ProcID{self},
	}

	var algo core.Algorithm
	var finish func(h *rt.Host, deadline time.Time) (string, error)
	switch *alg {
	case "hbo":
		vals, err := parseInputs(*inputs, *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
			return 2
		}
		algo = hbo.New(hbo.Config{Inputs: vals, HaltAfterDecide: true})
		finish = func(h *rt.Host, deadline time.Time) (string, error) {
			v, err := awaitExposed(h, self, hbo.DecisionKey, deadline)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("decided %d", v.(benor.Val)), nil
		}
	case "le-msg", "le-shm":
		kind := leader.MessageNotifier
		if *alg == "le-shm" {
			kind = leader.SharedMemoryNotifier
		}
		algo = leader.New(leader.Config{Notifier: kind})
		window := *stable
		finish = func(h *rt.Host, deadline time.Time) (string, error) {
			l, err := awaitStableLeader(h, self, window, deadline)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("leader %v", l), nil
		}
	default:
		fmt.Fprintf(os.Stderr, "mnmnode: unknown -alg %q\n", *alg)
		return 2
	}

	h, err := rt.New(cfg, algo)
	if err != nil {
		tr.Close()
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 1
	}
	deadline := time.Now().Add(*timeout)
	if err := waitMesh(tr, self, *n, deadline); err != nil {
		h.Stop()
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 1
	}
	h.Start()
	line, err := finish(h, deadline)
	if err != nil {
		h.Stop()
		fmt.Fprintf(os.Stderr, "mnmnode: %v\n", err)
		return 1
	}
	fmt.Println(line)
	// Keep serving register reads and retransmissions for peers that have
	// not finished yet, then drain and tear down.
	time.Sleep(*linger)
	res := h.Stop()
	for p, e := range res.Errors {
		fmt.Fprintf(os.Stderr, "mnmnode: process %v: %v\n", p, e)
		return 1
	}
	if *verbose {
		logf("done: %d steps in %v", res.Steps, res.Elapsed.Round(time.Millisecond))
	}
	return 0
}

// waitMesh blocks until this node's outbound link to every peer is up.
// Starting earlier is legal — sends queue and retransmit — but the
// step-counted heartbeat timers of the leader detector assume comparable
// step rates, and a process stalled in connect backoff mid-step looks
// exactly like a crashed leader to an already-connected peer.
func waitMesh(tr *tcp.Transport, self core.ProcID, n int, deadline time.Time) error {
	for q := 0; q < n; q++ {
		p := core.ProcID(q)
		if p == self {
			continue
		}
		for tr.LinkState(self, p) != transport.LinkUp {
			if !time.Now().Before(deadline) {
				return fmt.Errorf("link to process %v not up before deadline", p)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}

// parseInputs parses the -inputs list into benor values.
func parseInputs(s string, n int) ([]benor.Val, error) {
	if s == "" {
		return nil, fmt.Errorf("-inputs is required for hbo")
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-inputs has %d values, want n=%d", len(parts), n)
	}
	out := make([]benor.Val, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || (v != 0 && v != 1) {
			return nil, fmt.Errorf("-inputs[%d] = %q, want 0 or 1", i, p)
		}
		out[i] = benor.Val(v)
	}
	return out, nil
}

// awaitExposed polls until process p exposes key, or the deadline passes.
func awaitExposed(h *rt.Host, p core.ProcID, key string, deadline time.Time) (core.Value, error) {
	for time.Now().Before(deadline) {
		if v := h.Exposed(p, key); v != nil {
			return v, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("timed out waiting for %q", key)
}

// awaitStableLeader polls process p's leader output until it has held one
// non-⊥ value for window, or the deadline passes.
func awaitStableLeader(h *rt.Host, p core.ProcID, window time.Duration, deadline time.Time) (core.ProcID, error) {
	cur := core.NoProc
	var since time.Time
	for time.Now().Before(deadline) {
		l := core.NoProc
		if v, ok := h.Exposed(p, leader.LeaderKey).(core.ProcID); ok {
			l = v
		}
		if l != cur {
			cur, since = l, time.Now()
		}
		if cur != core.NoProc && time.Since(since) >= window {
			return cur, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return core.NoProc, fmt.Errorf("timed out waiting for a stable leader (last %v)", cur)
}
