package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"
)

// rsmStatus is the /status slice the recovery test reads.
type rsmStatus struct {
	Applied int    `json:"applied"`
	Hash    string `json:"hash"`
	Done    bool   `json:"done"`
}

func fetchRSMStatus(client *http.Client, addr string) (rsmStatus, bool) {
	var st rsmStatus
	resp, err := client.Get("http://" + addr + "/status")
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}

// TestKillMinusNineRecovery is the issue's acceptance scenario end to end:
// a two-node replicated log in crash-recovery mode, one node SIGKILLed
// mid-run, restarted from its data dir, and both incarnations must settle
// on the same committed prefix — the same applied count and the same
// chain hash — with the survivor never having gone down.
func TestKillMinusNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	addrs := reserveAddrs(t, 2)
	maddrs := reserveAddrs(t, 2)
	dataDir := t.TempDir()

	nodeArgs := func(id int) []string {
		return []string{
			"-id", strconv.Itoa(id), "-n", "2",
			"-addrs", strings.Join(addrs, ","),
			"-alg", "rsm", "-cmds", "8",
			"-durable", "-data-dir", dataDir,
			"-metrics-addr", maddrs[id],
			"-timeout", "90s", "-linger", "30s",
		}
	}
	start := func(id int) (*exec.Cmd, *bytes.Buffer, *bytes.Buffer) {
		cmd := exec.Command(bin, nodeArgs(id)...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		return cmd, &stdout, &stderr
	}

	n0, out0, err0 := start(0)
	n1, _, _ := start(1)
	defer n0.Process.Kill()
	defer n1.Process.Kill()

	// Let the log make progress, then kill node 1 without ceremony.
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st, ok := fetchRSMStatus(client, maddrs[1]); ok && st.Applied >= 2 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("node 1 never applied 2 log entries")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := n1.Process.Kill(); err != nil { // SIGKILL: no defers, no drain, no WAL close
		t.Fatal(err)
	}
	n1.Wait()

	// The restarted incarnation must announce its recovered state and
	// finish the run from the journal, not from scratch.
	n1b, out1, err1 := start(1)
	defer n1b.Process.Kill()
	if err := n1b.Wait(); err != nil {
		t.Fatalf("restarted node 1: %v\nstderr: %s", err, err1.String())
	}
	if err := n0.Wait(); err != nil {
		t.Fatalf("node 0: %v\nstderr: %s", err, err0.String())
	}
	if !strings.Contains(err1.String(), "recovered durable state") {
		t.Errorf("restarted node 1 never logged its recovery:\n%s", err1.String())
	}

	line0 := strings.TrimSpace(out0.String())
	line1 := strings.TrimSpace(out1.String())
	want := fmt.Sprintf("committed %d ", 2*8)
	if !strings.HasPrefix(line0, want) || !strings.HasPrefix(line1, want) {
		t.Fatalf("committed lines: node0 %q, node1 %q, want prefix %q", line0, line1, want)
	}
	if line0 != line1 {
		t.Fatalf("log diverged across the crash: node0 %q, node1 %q", line0, line1)
	}
}
