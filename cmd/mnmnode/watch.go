// Watch mode: `mnmnode -watch -addrs <metrics endpoints>` turns the
// binary into a read-only cluster poller. Each refresh fetches every
// node's /metrics?format=json and /healthz, differences the counter
// totals against the previous poll, and prints one rate table. On a
// converged leader election the table IS Theorem 5.1: MSG/S at zero on
// every node while the leader's LOCAL_WR/S and the followers'
// REMOTE_RD/S stay hot.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"text/tabwriter"
	"time"

	"github.com/mnm-model/mnm/internal/metrics"
)

// watchPrev is the last successful poll of one node.
type watchPrev struct {
	at  time.Time
	doc metrics.ExportJSON
	ok  bool
}

// runWatch polls every addr's metrics endpoint and prints one cluster
// rate table per interval; count bounds the refreshes (0 = forever).
func runWatch(addrs []string, interval time.Duration, count int, out io.Writer) int {
	if interval <= 0 {
		interval = time.Second
	}
	client := &http.Client{Timeout: interval}
	prev := make([]watchPrev, len(addrs))
	for iter := 0; count <= 0 || iter < count; iter++ {
		if iter > 0 {
			time.Sleep(interval)
		}
		tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "NODE\tHEALTH\tLEADER\tMSG/S\tFRAMES/S\tRPC/S\tREMOTE_RD/S\tLOCAL_WR/S\tRTT_P95")
		for i, a := range addrs {
			doc, err := fetchMetrics(client, a)
			if err != nil {
				fmt.Fprintf(tw, "%s\tunreachable\t-\t-\t-\t-\t-\t-\t-\n", a)
				prev[i].ok = false
				continue
			}
			now := time.Now()
			rates := []string{"-", "-", "-", "-", "-"}
			if secs := now.Sub(prev[i].at).Seconds(); prev[i].ok && secs > 0 {
				rate := func(k string) string {
					d := doc.Counters[k].Total - prev[i].doc.Counters[k].Total
					return fmt.Sprintf("%.1f", float64(d)/secs)
				}
				rates = []string{
					rate("msg_sent"), rate("frame_sent"), rate("rpc_issued"),
					rate("reg_read_remote"), rate("reg_write_local"),
				}
			}
			rtt := time.Duration(doc.Histograms[metrics.HistFrameRTT].P95NS).Round(time.Microsecond)
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%v\n",
				a, fetchHealth(client, a), fetchLeader(client, a),
				rates[0], rates[1], rates[2], rates[3], rates[4], rtt)
			prev[i] = watchPrev{at: now, doc: doc, ok: true}
		}
		tw.Flush()
		fmt.Fprintln(out)
	}
	return 0
}

// fetchMetrics fetches and decodes one node's JSON metrics export.
func fetchMetrics(c *http.Client, addr string) (metrics.ExportJSON, error) {
	var doc metrics.ExportJSON
	resp, err := c.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	return doc, json.NewDecoder(resp.Body).Decode(&doc)
}

// fetchLeader returns the leader the node's /status reports, or "-" when
// the node runs no election (or has not adopted a leader yet).
func fetchLeader(c *http.Client, addr string) string {
	resp, err := c.Get("http://" + addr + "/status")
	if err != nil {
		return "-"
	}
	defer resp.Body.Close()
	var st struct {
		Leader string `json:"leader"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || st.Leader == "" {
		return "-"
	}
	return st.Leader
}

// fetchHealth returns the node's /healthz status ("ok", "degraded"), or
// "unknown" when the endpoint is unreachable or malformed. /healthz
// answers 503 while degraded, so the body is decoded regardless of the
// response code.
func fetchHealth(c *http.Client, addr string) string {
	resp, err := c.Get("http://" + addr + "/healthz")
	if err != nil {
		return "unknown"
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Status == "" {
		return "unknown"
	}
	return h.Status
}
