package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"

	"github.com/mnm-model/mnm/internal/analysis"
	"github.com/mnm-model/mnm/internal/analysis/suite"
)

func sampleDiags(root string) []analysis.Diagnostic {
	return []analysis.Diagnostic{{
		Pos: token.Position{
			Filename: filepath.Join(root, "internal", "transport", "tcp", "peer.go"),
			Line:     42,
			Column:   3,
		},
		Rule:    "fsyncorder",
		Message: "frame becomes visible before its WAL journal append",
	}}
}

func TestEmitJSON(t *testing.T) {
	root := t.TempDir()
	var buf bytes.Buffer
	if err := emitJSON(&buf, root, sampleDiags(root)); err != nil {
		t.Fatal(err)
	}
	var got []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 {
		t.Fatalf("got %d findings, want 1", len(got))
	}
	if got[0].File != "internal/transport/tcp/peer.go" {
		t.Errorf("file not root-relative: %q", got[0].File)
	}
	if got[0].Line != 42 || got[0].Rule != "fsyncorder" {
		t.Errorf("finding mangled: %+v", got[0])
	}
}

func TestEmitSARIF(t *testing.T) {
	root := t.TempDir()
	var buf bytes.Buffer
	if err := emitSARIF(&buf, root, suite.All(), sampleDiags(root)); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad SARIF envelope: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mnmvet" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(suite.All()) {
		t.Errorf("rule metadata for %d rules, want %d", len(run.Tool.Driver.Rules), len(suite.All()))
	}
	if len(run.Results) != 1 {
		t.Fatalf("%d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "fsyncorder" || res.Level != "error" {
		t.Errorf("result mangled: %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/transport/tcp/peer.go" {
		t.Errorf("URI not root-relative: %q", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 {
		t.Errorf("start line %d", loc.Region.StartLine)
	}
}

func TestEmitSARIFEmptyIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := emitSARIF(&buf, "/", suite.All(), nil); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("empty SARIF not valid JSON: %v", err)
	}
	if log.Runs[0].Results == nil {
		t.Errorf("results must be an empty array, not null (upload-sarif rejects null)")
	}
}
