package main

import (
	"os"
	"testing"

	"github.com/mnm-model/mnm/internal/analysis"
	"github.com/mnm-model/mnm/internal/analysis/loader"
	"github.com/mnm-model/mnm/internal/analysis/suite"
)

// TestRepoClean is the acceptance criterion made executable: the whole
// module must pass every mnmvet rule. If this fails, either fix the
// flagged code or, for a deliberate exception, add a //mnmvet:allow or
// //mnmvet:exempt directive with a reason.
func TestRepoClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := loader.ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages from module root")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.ImportPath, terr)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	for _, d := range analysis.CheckAll(pkgs, suite.All()...) {
		t.Errorf("mnmvet finding: %s", d)
	}
}

func TestListFlag(t *testing.T) {
	if code := run([]string{"-list"}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("mnmvet -list: exit %d, want 0", code)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-run", "nonesuch"}, os.Stdout, os.Stderr); code != 2 {
		t.Fatalf("mnmvet -run nonesuch: exit %d, want 2", code)
	}
}
