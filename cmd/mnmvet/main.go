// Command mnmvet machine-checks the repo's own invariants: the rules the
// compiler cannot see but the m&m protocols are only correct under.
//
//	go run ./cmd/mnmvet ./...          # whole repo (what CI's lint job runs)
//	go run ./cmd/mnmvet -list          # describe the rules
//	go run ./cmd/mnmvet -run wiregob,timerleak ./internal/...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// The six rules (see DESIGN.md "Machine-checked invariants"):
//
//	simdeterminism  no wall clock / global rand in deterministic packages
//	wiregob         every wire-crossing type is gob-registered
//	wirecodec       generated wire_codec.go matches the gob.Register set
//	lockedblocking  no blocking work while a mutex is held
//	timerleak       no time.After in loops, no time.Tick
//	stopselect      channel waits in rt/transport are stop-interruptible
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mnm-model/mnm/internal/analysis"
	"github.com/mnm-model/mnm/internal/analysis/loader"
	"github.com/mnm-model/mnm/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mnmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mnmvet [-list] [-run rules] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "mnmvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "mnmvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mnmvet: %v\n", err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			broken = true
			fmt.Fprintf(stderr, "mnmvet: %s: %v\n", pkg.ImportPath, terr)
		}
	}
	if broken {
		return 2
	}
	diags := analysis.CheckAll(pkgs, analyzers...)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mnmvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
