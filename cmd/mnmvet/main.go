// Command mnmvet machine-checks the repo's own invariants: the rules the
// compiler cannot see but the m&m protocols are only correct under.
//
//	go run ./cmd/mnmvet ./...          # whole repo (what CI's lint job runs)
//	go run ./cmd/mnmvet -list          # describe the rules
//	go run ./cmd/mnmvet -run wiregob,timerleak ./internal/...
//	go run ./cmd/mnmvet -sarif ./...   # SARIF 2.1.0 (CI uploads this)
//	go run ./cmd/mnmvet -json ./...    # flat JSON findings
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// The ten rules (see DESIGN.md "Machine-checked invariants"):
//
//	simdeterminism  no wall clock / global rand in deterministic packages
//	wiregob         every wire-crossing type is gob-registered
//	wirecodec       generated wire_codec.go matches the gob.Register set
//	lockedblocking  no blocking work while a mutex is held (sees through calls)
//	timerleak       no time.After in loops, no time.Tick
//	stopselect      channel waits in rt/transport are stop-interruptible
//	fsyncorder      WAL append/fsync dominates the mutation or ack it guards
//	lockorder       the cross-package lock-acquisition graph stays acyclic
//	spanprop        transport sends thread the trace context or fall back explicitly
//	ctrlgroup       ack/hello/reject frames pin group 0 and a zero trace triple
//
// The last four run on interprocedural effect summaries: a package-level
// call graph with per-function effects propagated bottom-up over SCCs,
// so a reorder or lock nesting hidden behind a helper is still seen.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mnm-model/mnm/internal/analysis"
	"github.com/mnm-model/mnm/internal/analysis/loader"
	"github.com/mnm-model/mnm/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mnmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mnmvet [-list] [-run rules] [-json|-sarif] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintf(stderr, "mnmvet: -json and -sarif are mutually exclusive\n")
		return 2
	}
	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "mnmvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "mnmvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mnmvet: %v\n", err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			broken = true
			fmt.Fprintf(stderr, "mnmvet: %s: %v\n", pkg.ImportPath, terr)
		}
	}
	if broken {
		return 2
	}
	diags := analysis.CheckAll(pkgs, analyzers...)
	root, err := loader.ModuleRoot(cwd)
	if err != nil {
		root = cwd
	}
	switch {
	case *jsonOut:
		if err := emitJSON(stdout, root, diags); err != nil {
			fmt.Fprintf(stderr, "mnmvet: %v\n", err)
			return 2
		}
	case *sarifOut:
		// Emitted even when clean: CI uploads the file unconditionally.
		if err := emitSARIF(stdout, root, analyzers, diags); err != nil {
			fmt.Fprintf(stderr, "mnmvet: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mnmvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
