// Machine-readable output for mnmvet findings: a flat JSON array for
// scripts and editors, and SARIF 2.1.0 for code-scanning UIs (CI uploads
// the SARIF so findings annotate the PR diff instead of hiding in a log).
package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"github.com/mnm-model/mnm/internal/analysis"
)

// jsonDiag is one finding in -json output: a stable flat shape.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func emitJSON(out io.Writer, root string, diags []analysis.Diagnostic) error {
	js := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		js = append(js, jsonDiag{
			File:    relTo(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// SARIF 2.1.0, minimum profile: tool.driver with rule metadata, one
// result per finding, file URIs relative to the source root.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func emitSARIF(out io.Writer, root string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       relTo(root, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mnmvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relTo makes filename root-relative (forward slashes, as SARIF wants);
// files outside root keep their original path.
func relTo(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || rel == ".." || filepath.IsAbs(rel) ||
		len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
