// Command mnmbench regenerates the paper-reproduction experiments: every
// figure- and theorem-level claim of "Passing Messages while Sharing
// Memory" (PODC 2018) that this repository validates empirically.
//
// Usage:
//
//	mnmbench                         # run every experiment (full sizes)
//	mnmbench -quick                  # smaller sizes, faster
//	mnmbench -experiment T43,LE1     # run a subset
//	mnmbench -list                   # list experiments
//	mnmbench -seed 7                 # perturb all randomness
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/mnm-model/mnm/internal/expt"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		ids   = flag.String("experiment", "all", "comma-separated experiment ids, or \"all\"")
		quick = flag.Bool("quick", false, "smaller sizes and fewer seeds")
		seed  = flag.Int64("seed", 1, "seed perturbing all randomness")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-6s %-62s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}

	var selected []expt.Experiment
	if *ids == "all" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, ok := expt.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "mnmbench: unknown experiment %q (known: %s)\n",
					id, strings.Join(expt.IDs(), ", "))
				return 2
			}
			selected = append(selected, e)
		}
	}

	params := expt.Params{Quick: *quick, Seed: *seed}
	failed := 0
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		if err := e.Run(os.Stdout, params); err != nil {
			fmt.Fprintf(os.Stderr, "mnmbench: experiment %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		return 1
	}
	return 0
}
