// Command mnmbench regenerates the paper-reproduction experiments: every
// figure- and theorem-level claim of "Passing Messages while Sharing
// Memory" (PODC 2018) that this repository validates empirically.
//
// Usage:
//
//	mnmbench                         # run every seed-deterministic experiment
//	mnmbench -quick                  # smaller sizes, faster
//	mnmbench -experiment T43,LE1     # run a subset
//	mnmbench -parallel 8             # worker count (default GOMAXPROCS)
//	mnmbench -json                   # one JSON record per experiment
//	mnmbench -list                   # list experiments
//	mnmbench -seed 7                 # perturb all randomness
//	mnmbench -bench-transport BENCH_transport.json -bench-label dev
//	                                 # measure the transport hot path and
//	                                 # append the run to the perf trajectory
//
// Experiments run concurrently (and fan their own independent trials out
// across the same worker budget), but their tables are buffered and
// flushed in presentation order, so the output for a given -seed is
// byte-identical at every -parallel setting.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/mnm-model/mnm/internal/expt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// record is the machine-readable per-experiment result emitted by -json,
// one JSON object per line in presentation order.
type record struct {
	ID        string   `json:"id"`
	Rows      []string `json:"rows"`
	StartedAt string   `json:"started_at"`
	ElapsedMS int64    `json:"elapsed_ms"`
	OK        bool     `json:"ok"`
	Error     string   `json:"error,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mnmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list experiments and exit")
		ids        = fs.String("experiment", "all", "comma-separated experiment ids, or \"all\" (seed-deterministic experiments; wall-clock ones like TPUT run only when named)")
		quick      = fs.Bool("quick", false, "smaller sizes and fewer seeds")
		seed       = fs.Int64("seed", 1, "seed perturbing all randomness")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count for experiments and their trials")
		jsonOut    = fs.Bool("json", false, "emit one JSON record per experiment instead of tables")
		benchOut   = fs.String("bench-transport", "", "measure the transport hot path and append the run to this JSON trajectory file")
		benchLabel = fs.String("bench-label", "dev", "label recorded with the -bench-transport run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *benchOut != "" {
		return runTransportBench(*benchOut, *benchLabel, *quick, stdout, stderr)
	}

	if *list {
		for _, e := range expt.All() {
			note := ""
			if e.WallClock {
				note = " (wall-clock; excluded from \"all\")"
			}
			fmt.Fprintf(stdout, "%-6s %-62s [%s]%s\n", e.ID, e.Title, e.Paper, note)
		}
		return 0
	}

	selected, err := selectExperiments(*ids)
	if err != nil {
		fmt.Fprintf(stderr, "mnmbench: %v\n", err)
		return 2
	}

	params := expt.Params{Quick: *quick, Seed: *seed, Parallel: *parallel}

	// Run experiments concurrently into per-experiment buffers; flush each
	// buffer only when all earlier experiments have been flushed, so
	// output streams in presentation order regardless of completion order.
	type outcome struct {
		buf     bytes.Buffer
		err     error
		started time.Time
		elapsed time.Duration
	}
	outcomes := make([]*outcome, len(selected))
	done := make([]chan struct{}, len(selected))
	for i := range selected {
		outcomes[i] = &outcome{}
		done[i] = make(chan struct{})
	}

	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				o := outcomes[i]
				o.started = time.Now()
				o.err = selected[i].Run(&o.buf, params)
				o.elapsed = time.Since(o.started)
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range selected {
			idx <- i
		}
		close(idx)
	}()

	enc := json.NewEncoder(stdout)
	failed := 0
	for i, e := range selected {
		<-done[i]
		o := outcomes[i]
		if o.err != nil {
			failed++
		}
		if *jsonOut {
			rec := record{
				ID:        e.ID,
				Rows:      strings.Split(strings.TrimRight(o.buf.String(), "\n"), "\n"),
				StartedAt: o.started.UTC().Format(time.RFC3339Nano),
				ElapsedMS: o.elapsed.Milliseconds(),
				OK:        o.err == nil,
			}
			if o.err != nil {
				rec.Error = o.err.Error()
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintf(stderr, "mnmbench: encoding %s: %v\n", e.ID, err)
				return 1
			}
			continue
		}
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		io.Copy(stdout, &o.buf)
		if o.err != nil {
			fmt.Fprintf(stderr, "mnmbench: experiment %s failed: %v\n", e.ID, o.err)
			continue
		}
		fmt.Fprintf(stdout, "[%s completed in %v]\n", e.ID, o.elapsed.Round(time.Millisecond))
	}
	wg.Wait()
	if failed > 0 {
		return 1
	}
	return 0
}

// selectExperiments parses the -experiment flag: "all", or a comma-
// separated id list. Empty entries (trailing or doubled commas) are
// skipped and repeated ids are deduplicated, so "T43,,LE1,T43," selects
// exactly T43 then LE1 — an experiment never runs twice. "all" keeps the
// byte-identical-per-seed invariant: wall-clock experiments (TPUT) are
// skipped and must be named explicitly.
func selectExperiments(ids string) ([]expt.Experiment, error) {
	if ids == "all" {
		var selected []expt.Experiment
		for _, e := range expt.All() {
			if !e.WallClock {
				selected = append(selected, e)
			}
		}
		return selected, nil
	}
	var selected []expt.Experiment
	seen := make(map[string]bool)
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		e, ok := expt.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (known: %s)",
				id, strings.Join(expt.IDs(), ", "))
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no experiments selected from %q", ids)
	}
	return selected, nil
}
