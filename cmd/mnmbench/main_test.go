package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSmokeQuickParallelJSON is the harness smoke test: a quick parallel
// subset run must exit 0 and emit one parseable JSON record per experiment
// in presentation (selection) order.
func TestSmokeQuickParallelJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-quick", "-parallel", "4", "-experiment", "F1,T43,LE1", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSON records, want 3:\n%s", len(lines), out.String())
	}
	wantIDs := []string{"F1", "T43", "LE1"}
	for i, line := range lines {
		var rec struct {
			ID        string   `json:"id"`
			Rows      []string `json:"rows"`
			StartedAt string   `json:"started_at"`
			ElapsedMS int64    `json:"elapsed_ms"`
			OK        bool     `json:"ok"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d not parseable JSON: %v\n%s", i, err, line)
		}
		if rec.ID != wantIDs[i] {
			t.Errorf("record %d id = %q, want %q (presentation order)", i, rec.ID, wantIDs[i])
		}
		if !rec.OK {
			t.Errorf("record %d (%s) not ok", i, rec.ID)
		}
		if len(rec.Rows) < 5 {
			t.Errorf("record %d (%s) suspiciously short: %d rows", i, rec.ID, len(rec.Rows))
		}
		if rec.ElapsedMS < 0 {
			t.Errorf("record %d (%s) negative elapsed_ms", i, rec.ID)
		}
		if ts, err := time.Parse(time.RFC3339Nano, rec.StartedAt); err != nil || ts.IsZero() {
			t.Errorf("record %d (%s) started_at = %q, want RFC3339: %v", i, rec.ID, rec.StartedAt, err)
		}
	}
}

// TestExperimentSelectionParsing covers the trailing-comma and duplicate-id
// fixes: empty entries are skipped, repeated ids run once, unknown ids
// still fail.
func TestExperimentSelectionParsing(t *testing.T) {
	sel, err := selectExperiments("T43,,F1, ,T43,")
	if err != nil {
		t.Fatalf("selection with empties/dupes failed: %v", err)
	}
	var got []string
	for _, e := range sel {
		got = append(got, e.ID)
	}
	if strings.Join(got, ",") != "T43,F1" {
		t.Errorf("selected %v, want [T43 F1]", got)
	}

	if _, err := selectExperiments("nope"); err == nil {
		t.Error("unknown experiment did not error")
	}
	if _, err := selectExperiments(",,"); err == nil {
		t.Error("empty selection did not error")
	}
	if all, err := selectExperiments("all"); err != nil || len(all) == 0 {
		t.Errorf("all selection: %v, %d experiments", err, len(all))
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-quick", "-experiment", "F1,"}, &out, &errOut); code != 0 {
		t.Errorf("trailing comma exited %d, stderr: %s", code, errOut.String())
	}
	if code := run([]string{"-quick", "-experiment", "bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown experiment exited %d, want 2", code)
	}
}

// TestParallelTablesByteIdentical compares the JSON rows (table bytes,
// minus wall-clock noise) of a sequential and a parallel run at the same
// seed.
func TestParallelTablesByteIdentical(t *testing.T) {
	rowsOf := func(parallel string) []string {
		var out, errOut bytes.Buffer
		code := run([]string{"-quick", "-seed", "5", "-parallel", parallel, "-experiment", "T43,BO", "-json"}, &out, &errOut)
		if code != 0 {
			t.Fatalf("-parallel %s exited %d, stderr: %s", parallel, code, errOut.String())
		}
		var rows []string
		for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
			var rec struct {
				Rows []string `json:"rows"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatal(err)
			}
			rows = append(rows, rec.Rows...)
		}
		return rows
	}
	seq := rowsOf("1")
	par := rowsOf("4")
	if strings.Join(seq, "\n") != strings.Join(par, "\n") {
		t.Errorf("tables differ between -parallel 1 and -parallel 4:\n--- seq ---\n%s\n--- par ---\n%s",
			strings.Join(seq, "\n"), strings.Join(par, "\n"))
	}
}

func TestListFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, id := range []string{"F1", "T43", "PAX"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}
