package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWallClockExperimentsExcludedFromAll pins the selection contract
// that keeps `-experiment all` byte-identical per seed: the wall-clock
// TPUT experiment never rides along with "all" and must be named.
func TestWallClockExperimentsExcludedFromAll(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range all {
		if e.WallClock {
			t.Errorf("wall-clock experiment %s selected by \"all\"", e.ID)
		}
	}
	named, err := selectExperiments("TPUT")
	if err != nil {
		t.Fatalf("explicit TPUT selection failed: %v", err)
	}
	if len(named) != 1 || named[0].ID != "TPUT" {
		t.Fatalf("explicit selection returned %v, want [TPUT]", named)
	}
}

// TestBenchTransportTrajectory runs -bench-transport twice against the
// same file and checks the append-only trajectory contract: runs
// accumulate in order, the schema survives a round trip, and the measured
// fields are sane. It also checks the refuse-to-overwrite guard for a
// file that is not a trajectory.
func TestBenchTransportTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_transport.json")

	for i, label := range []string{"first", "second"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-quick", "-bench-transport", path, "-bench-label", label}, &out, &errOut)
		if code != 0 {
			t.Fatalf("run %d exit code %d, stderr: %s", i, code, errOut.String())
		}
		if !strings.Contains(out.String(), "send throughput:") {
			t.Errorf("run %d summary missing throughput line:\n%s", i, out.String())
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file benchFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trajectory not parseable: %v", err)
	}
	if file.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", file.Schema, benchSchema)
	}
	if len(file.Runs) != 2 {
		t.Fatalf("got %d runs, want 2 (append-only)", len(file.Runs))
	}
	for i, want := range []string{"first", "second"} {
		r := file.Runs[i]
		if r.Label != want {
			t.Errorf("run %d label = %q, want %q", i, r.Label, want)
		}
		if !r.Quick {
			t.Errorf("run %d quick = false, want true", i)
		}
		if r.SendFramesPerSec <= 0 || r.BroadcastMsgsPerSec <= 0 || r.RPCMeanMicros <= 0 {
			t.Errorf("run %d has non-positive measurements: %+v", i, r)
		}
		if r.FramesSent < int64(r.SendFrames) {
			t.Errorf("run %d frames_sent = %d, want >= %d data frames", i, r.FramesSent, r.SendFrames)
		}
		if r.FrameBatches < 1 || r.FrameBatches > r.FramesSent {
			t.Errorf("run %d frame_batches = %d outside [1, %d]", i, r.FrameBatches, r.FramesSent)
		}
		if r.AckFlushes < 1 || r.AckFlushes > r.FramesSent {
			t.Errorf("run %d ack_flushes = %d outside [1, %d]", i, r.AckFlushes, r.FramesSent)
		}
	}

	// A file with the wrong schema must be refused, not clobbered.
	bogus := filepath.Join(t.TempDir(), "notes.json")
	if err := os.WriteFile(bogus, []byte(`{"schema":"something-else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-quick", "-bench-transport", bogus}, &out, &errOut); code == 0 {
		t.Fatal("appending to a non-trajectory file succeeded, want refusal")
	}
	after, err := os.ReadFile(bogus)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != `{"schema":"something-else"}` {
		t.Errorf("refused file was modified:\n%s", after)
	}
}
