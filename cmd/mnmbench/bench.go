package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/mnm-model/mnm/internal/expt"
)

// benchFile is the on-disk perf trajectory (BENCH_transport.json): one
// run appended per invocation, so the history of the transport hot path
// across PRs stays in one artifact.
type benchFile struct {
	Schema string     `json:"schema"`
	Runs   []benchRun `json:"runs"`
}

// benchSchema versions the trajectory file format.
const benchSchema = "mnm-transport-bench/v1"

// benchRun is one measured run plus its provenance.
type benchRun struct {
	Label     string `json:"label"`
	StartedAt string `json:"started_at"`
	Source    string `json:"source"`
	Notes     string `json:"notes,omitempty"`
	expt.TransportBenchResult
}

// runTransportBench measures the transport hot path, prints the run, and
// appends it to the trajectory file at path (creating the file if absent).
func runTransportBench(path, label string, quick bool, stdout, stderr io.Writer) int {
	started := time.Now().UTC()
	res, err := expt.RunTransportBench(expt.Params{Quick: quick})
	if err != nil {
		fmt.Fprintf(stderr, "mnmbench: transport bench: %v\n", err)
		return 1
	}
	run := benchRun{
		Label:                label,
		StartedAt:            started.Format(time.RFC3339),
		Source:               "mnmbench -bench-transport",
		TransportBenchResult: res,
	}

	var file benchFile
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &file); err != nil || file.Schema != benchSchema {
			fmt.Fprintf(stderr, "mnmbench: %s exists but is not a %s file (err=%v, schema=%q); refusing to overwrite\n",
				path, benchSchema, err, file.Schema)
			return 1
		}
	case errors.Is(err, os.ErrNotExist):
		file.Schema = benchSchema
	default:
		fmt.Fprintf(stderr, "mnmbench: read %s: %v\n", path, err)
		return 1
	}
	file.Runs = append(file.Runs, run)

	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "mnmbench: encode %s: %v\n", path, err)
		return 1
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "mnmbench: write %s: %v\n", path, err)
		return 1
	}

	fmt.Fprintf(stdout, "transport bench [%s] appended to %s (%d runs)\n", label, path, len(file.Runs))
	fmt.Fprintf(stdout, "  send throughput:   %.0f frames/s (%d frames, %.1f frames/flush mean)\n",
		res.SendFramesPerSec, res.SendFrames, res.MeanBatchFrames)
	if res.GobSendFramesPerSec > 0 {
		fmt.Fprintf(stdout, "  gob wire compare:  %.0f frames/s (%.1fx speedup on the binary codec)\n",
			res.GobSendFramesPerSec, res.SendFramesPerSec/res.GobSendFramesPerSec)
	}
	fmt.Fprintf(stdout, "  rpc latency:       mean %.1fµs  p95 %.1fµs (%d calls)\n",
		res.RPCMeanMicros, res.RPCP95Micros, res.RPCCalls)
	fmt.Fprintf(stdout, "  broadcast fan-out: %.0f msgs/s over %d nodes\n",
		res.BroadcastMsgsPerSec, res.BroadcastNodes)
	fmt.Fprintf(stdout, "  ack coalescing:    %.1f data frames per ack flush\n",
		float64(res.FramesSent)/float64(maxInt64(res.AckFlushes, 1)))
	if res.MultiGroupGroups > 0 {
		fmt.Fprintf(stdout, "  multi-group:       %.0f frames/s aggregate over %d groups, one shared connection\n",
			res.MultiGroupFramesPerSec, res.MultiGroupGroups)
	}
	return 0
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
