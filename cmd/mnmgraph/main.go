// Command mnmgraph is the shared-memory-graph toolkit: it builds the
// library's topology families and reports the quantities the paper's
// consensus results turn on — vertex expansion h(G), the Theorem 4.3
// fault-tolerance bound, the exact graph tolerance of the HBO simulation,
// worst-case crash sets, and SM-cuts (Theorem 4.4).
//
// Usage:
//
//	mnmgraph -family petersen
//	mnmgraph -family hypercube -param 4
//	mnmgraph -family randreg -n 16 -d 4 -seed 3
//	mnmgraph -family twocliques -param 5 -f 6     # also report crash set of size f
//	mnmgraph -families                            # list families
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/mnm-model/mnm/internal/graph"
)

func main() {
	os.Exit(run())
}

func buildFamily(family string, n, d, param int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch family {
	case "complete":
		return graph.Complete(n), nil
	case "edgeless":
		return graph.Edgeless(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "path":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "petersen":
		return graph.Petersen(), nil
	case "figure1":
		return graph.Figure1(), nil
	case "hypercube":
		return graph.Hypercube(param), nil
	case "torus":
		return graph.Torus(param, param), nil
	case "margulis":
		return graph.Margulis(param), nil
	case "twocliques":
		return graph.TwoCliquesBridge(param), nil
	case "barbell":
		return graph.Barbell(param, d), nil // -d doubles as the path length
	case "randreg":
		return graph.RandomConnectedRegular(n, d, rng)
	case "gnp":
		return graph.RandomGNP(n, float64(param)/100.0, rng), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func run() int {
	var (
		families = flag.Bool("families", false, "list graph families and exit")
		family   = flag.String("family", "petersen", "graph family")
		n        = flag.Int("n", 10, "vertex count (families that take one)")
		d        = flag.Int("d", 3, "degree (randreg)")
		param    = flag.Int("param", 3, "family parameter (dimension, clique size, torus side, gnp percent)")
		seed     = flag.Int64("seed", 1, "seed for random families")
		f        = flag.Int("f", -1, "also report the worst-case crash set of this size")
	)
	flag.Parse()

	if *families {
		fmt.Println("complete edgeless cycle path star petersen figure1 hypercube torus margulis twocliques barbell randreg gnp")
		return 0
	}

	g, err := buildFamily(*family, *n, *d, *param, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnmgraph: %v\n", err)
		return 2
	}

	fmt.Printf("family:      %s\n", *family)
	fmt.Printf("vertices:    %d\n", g.N())
	fmt.Printf("edges:       %d\n", g.M())
	fmt.Printf("degree:      min %d, max %d\n", g.MinDegree(), g.MaxDegree())
	fmt.Printf("connected:   %v\n", g.IsConnected())
	if g.N() <= 64 {
		fmt.Printf("diameter:    %d\n", g.Diameter())
	}

	if g.N() <= graph.MaxEnumN {
		h, wit, err := g.ExactExpansion()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnmgraph: %v\n", err)
			return 1
		}
		fmt.Printf("h(G):        %v (= %.4f), witness %v\n", h, h.Float(), wit)
		fmt.Printf("T4.3 bound:  f < %v  →  f_max = %d\n",
			fmt.Sprintf("(1 − 1/(2(1+%v)))·%d", h, g.N()), graph.FaultToleranceBound(g.N(), h))
		tol, err := g.ExactHBOTolerance()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnmgraph: %v\n", err)
			return 1
		}
		fmt.Printf("exact tol:   %d (largest f with a represented majority under worst-case crashes)\n", tol)
		cut, ok, err := g.FindSMCut(1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnmgraph: %v\n", err)
			return 1
		}
		if ok {
			thr, _ := g.ImpossibilityThreshold()
			fmt.Printf("SM-cut:      max min(|S|,|T|) = %d → consensus impossible for f ≥ %d\n", cut.MinSide(), thr)
			fmt.Printf("             witness %v\n", cut)
		} else {
			fmt.Printf("SM-cut:      none (Theorem 4.4 rules out no finite f)\n")
		}
	} else {
		rng := rand.New(rand.NewSource(*seed + 1))
		h, wit := g.GreedyExpansionUpperBound(rng, 50)
		fmt.Printf("h(G):        ≤ %v (= %.4f) by local search, witness size %d\n", h, h.Float(), wit.Count())
		if regular, _ := g.IsRegular(); regular && g.IsConnected() {
			lb, err := g.SpectralExpansionLowerBound()
			if err == nil {
				fmt.Printf("h(G):        ≥ %.4f by the spectral (Cheeger) bound\n", lb)
				fmt.Printf("T4.3 bound:  f_max ≥ %.1f (from the spectral lower bound)\n",
					graph.FaultToleranceBoundFloat(g.N(), lb))
			}
		}
		fmt.Printf("(n > %d: exact enumeration disabled)\n", graph.MaxEnumN)
	}

	if *f >= 0 {
		rng := rand.New(rand.NewSource(*seed + 2))
		crash, rep := g.GreedyWorstCrashSet(*f, rng, 50)
		fmt.Printf("worst f=%d:  crash %v → %d of %d represented (majority: %v)\n",
			*f, crash, rep, g.N(), 2*rep > g.N())
	}
	return 0
}
