// Command mnmwiregen generates the binary payload codecs the socket
// transport's wire plane uses instead of per-frame gob.
//
//	go run ./cmd/mnmwiregen ./...          # (re)write wire_codec.go files
//	go run ./cmd/mnmwiregen -check ./...   # verify they are current (CI)
//
// For every package with a wire.go, the gob.Register set there is the
// source of truth (the same set mnmvet's wiregob rule enforces): one
// wire_codec.go is emitted next to wire.go with a flat binary codec per
// registered type, plus a fingerprint manifest that mnmvet's wirecodec
// rule checks so the generated file cannot silently go stale.
//
// Exit status: 0 clean (or up to date with -check), 1 stale files under
// -check, 2 usage or load failure.
//
// If a stale wire_codec.go no longer compiles (e.g. a field was renamed),
// delete it and rerun — generation only needs wire.go and the type
// definitions to type-check.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/mnm-model/mnm/internal/analysis/loader"
	"github.com/mnm-model/mnm/internal/wiregen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mnmwiregen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "verify generated codecs are current instead of writing; exit 1 on drift")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mnmwiregen [-check] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "mnmwiregen: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mnmwiregen: %v\n", err)
		return 2
	}
	stale := 0
	for _, pkg := range pkgs {
		if !wiregen.HasWireFile(pkg) {
			continue
		}
		want, err := wiregen.Generate(pkg)
		if err != nil {
			fmt.Fprintf(stderr, "mnmwiregen: %v\n", err)
			return 2
		}
		path := filepath.Join(pkg.Dir, wiregen.FileName)
		got, readErr := os.ReadFile(path)
		switch {
		case want == nil:
			// No registered wire types: no codec file belongs here.
			if readErr == nil {
				if *check {
					fmt.Fprintf(stdout, "mnmwiregen: %s: stray %s (package registers no wire types)\n", pkg.ImportPath, wiregen.FileName)
					stale++
				} else if err := os.Remove(path); err != nil {
					fmt.Fprintf(stderr, "mnmwiregen: %v\n", err)
					return 2
				} else {
					fmt.Fprintf(stdout, "mnmwiregen: removed %s\n", path)
				}
			}
		case readErr == nil && bytes.Equal(got, want):
			// Up to date.
		case *check:
			fmt.Fprintf(stdout, "mnmwiregen: %s: %s is stale; rerun go run ./cmd/mnmwiregen ./...\n", pkg.ImportPath, wiregen.FileName)
			stale++
		default:
			if err := os.WriteFile(path, want, 0o644); err != nil {
				fmt.Fprintf(stderr, "mnmwiregen: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "mnmwiregen: wrote %s\n", path)
		}
	}
	if stale > 0 {
		fmt.Fprintf(stderr, "mnmwiregen: %d stale file(s)\n", stale)
		return 1
	}
	return 0
}
